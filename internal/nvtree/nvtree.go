// Package nvtree reimplements the NV-Tree of Yang et al. (FAST 2015 / IEEE
// TC 2015) as evaluated in the FPTree paper: leaves in SCM with an
// append-only log structure (inserts, updates and deletes all append an
// entry; a counter commit makes each append p-atomic), searched by reverse
// linear scan, and inner nodes kept contiguous in DRAM and rebuilt wholesale
// whenever a last-level inner node (leaf parent) overflows.
//
// Faithful characteristics the evaluation depends on:
//   - The reverse linear leaf scan costs (m+1)/2 key probes per lookup
//     (Figure 4's middle curve).
//   - Every entry carries a flag word, inflating SCM consumption (Figure 8).
//   - Leaf-parent overflow triggers a full inner-node rebuild, which is slow
//     and allocates sparse, capacity-padded parents — the DRAM blow-up and
//     the skewed-insert pathology of Section 6.4.
//   - The concurrent variant takes a global write lock for splits and
//     rebuilds, which limits its write scalability (Figures 9-11).
package nvtree

import (
	"bytes"
	"fmt"
	"sort"
	"sync/atomic"

	"fptree/internal/scm"
)

const (
	entryInsert = 1
	entryDelete = 2

	lOffCount = 0
	lOffNext  = 8
	lOffBound = 24 // fixed: u64 upper bound; var: PPtr + length (24 bytes)

	mOffMagic    = 0
	mOffKeyMode  = 8
	mOffLeafCap  = 16
	mOffValSize  = 24
	mOffHead     = 32  // head leaf PPtr
	mOffSplitLog = 64  // PCur, PNew1, PNew2, PPrev — one cache line
	mOffDelLog   = 128 // PCur, PPrev
	metaSize     = 192

	metaMagic = 0x4EF7_EE00_0001

	modeFixed = 0
	modeVar   = 1
)

// Config tunes the tree.
type Config struct {
	// LeafCap is the number of append slots per leaf (Table 1: 32; the
	// database experiment uses 1024).
	LeafCap int
	// InnerCap is the number of leaf slots per last-level inner node (leaf
	// parent) in DRAM.
	InnerCap int
	// ValueSize is the inline value size in bytes for variable-size keys.
	ValueSize int
}

func (c *Config) normalize() error {
	if c.LeafCap == 0 {
		c.LeafCap = 32
	}
	if c.InnerCap == 0 {
		c.InnerCap = 128
	}
	if c.ValueSize == 0 {
		c.ValueSize = 8
	}
	if c.LeafCap < 4 || c.LeafCap > 4096 || c.InnerCap < 4 {
		return fmt.Errorf("nvtree: bad config %+v", *c)
	}
	return nil
}

// Tree is the single-threaded fixed-size-key NV-Tree.
type Tree struct {
	*base
}

// VarTree is the single-threaded variable-size-key NV-Tree.
type VarTree struct {
	*base
}

type base struct {
	pool    *scm.Pool
	mode    int
	leafCap int
	valSize int
	plnCap  int
	meta    uint64
	size    int

	// DRAM part: contiguous last-level inner nodes (leaf parents) plus a
	// sorted directory over their max keys. Rebuilt wholesale on overflow
	// and on recovery.
	plns     []pln
	rebuilds uint64 // number of full inner-node rebuilds (pathology counter)

	// Probe counters for the Figure 4 comparison (atomic: the concurrent
	// wrappers run finds in parallel).
	Searches  atomic.Uint64
	KeyProbes atomic.Uint64
}

// pln is one leaf parent: capacity-padded arrays, as the NV-Tree's
// contiguous layout preallocates (the source of its DRAM footprint).
type pln struct {
	maxKeyF uint64   // directory key (fixed mode; ^0 = +infinity)
	maxKeyV []byte   // directory key (var mode)
	vInf    bool     // var mode: maxKeyV is +infinity
	sepsF   []uint64 // per-leaf routing bounds (nil sepsV entry = +infinity)
	sepsV   [][]byte
	leaves  []uint64
}

func (b *base) entrySize() uint64 {
	if b.mode == modeVar {
		return 8 + scm.PPtrSize + 8 + uint64((b.valSize+7)/8*8)
	}
	return 24 // flag + key + value: the flag word is pure overhead
}

// entriesOff is the offset of the first log slot; the leaf's routing bound
// sits between the next pointer and the log. Boundary keys are assigned at
// split time and never change, so routing stays stable across the inner
// rebuilds (as in the original NV-Tree, where leaves keep their split keys).
func (b *base) entriesOff() uint64 {
	if b.mode == modeVar {
		return lOffBound + scm.PPtrSize + 8
	}
	return lOffBound + 8
}

func (b *base) leafSize() uint64 {
	return (b.entriesOff() + uint64(b.leafCap)*b.entrySize() + scm.LineSize - 1) / scm.LineSize * scm.LineSize
}

// infBound is the fixed-mode "+infinity" routing bound.
const infBound = ^uint64(0)

// leafBoundF reads the fixed-mode bound.
func (b *base) leafBoundF(l uint64) uint64 { return b.pool.ReadU64(l + lOffBound) }

// leafBoundV reads the var-mode bound; nil means "+infinity".
func (b *base) leafBoundV(l uint64) []byte {
	klen := b.pool.ReadU64(l + lOffBound + scm.PPtrSize)
	if klen == ^uint64(0) {
		return nil
	}
	pk := b.pool.ReadPPtr(l + lOffBound)
	return b.pool.ReadBytes(pk.Offset, klen)
}

// setLeafBoundF durably stores a fixed-mode bound.
func (b *base) setLeafBoundF(l uint64, bound uint64) {
	b.pool.WriteU64(l+lOffBound, bound)
	b.pool.Persist(l+lOffBound, 8)
}

// setLeafBoundInfV marks a var-mode leaf as unbounded.
func (b *base) setLeafBoundInfV(l uint64) {
	b.pool.WritePPtr(l+lOffBound, scm.PPtr{})
	b.pool.WriteU64(l+lOffBound+scm.PPtrSize, ^uint64(0))
	b.pool.Persist(l+lOffBound, scm.PPtrSize+8)
}

// setLeafBoundV allocates a copy of the bound key owned by the leaf's bound
// cell.
func (b *base) setLeafBoundV(l uint64, bound []byte) error {
	b.pool.WriteU64(l+lOffBound+scm.PPtrSize, uint64(len(bound)))
	b.pool.Persist(l+lOffBound+scm.PPtrSize, 8)
	pk, err := b.pool.Alloc(l+lOffBound, uint64(len(bound)))
	if err != nil {
		return err
	}
	b.pool.WriteBytes(pk.Offset, bound)
	b.pool.Persist(pk.Offset, uint64(len(bound)))
	return nil
}

// copyLeafBound copies src's bound cell into dst (pointer copy: ownership
// moves with the surviving leaf).
func (b *base) copyLeafBound(dst, src uint64) {
	if b.mode == modeFixed {
		b.setLeafBoundF(dst, b.leafBoundF(src))
		return
	}
	b.pool.WritePPtr(dst+lOffBound, b.pool.ReadPPtr(src+lOffBound))
	b.pool.WriteU64(dst+lOffBound+scm.PPtrSize, b.pool.ReadU64(src+lOffBound+scm.PPtrSize))
	b.pool.Persist(dst+lOffBound, scm.PPtrSize+8)
}

// New formats a fixed-size-key NV-Tree.
func New(pool *scm.Pool, cfg Config) (*Tree, error) {
	b, err := create(pool, cfg, modeFixed)
	if err != nil {
		return nil, err
	}
	return &Tree{base: b}, nil
}

// NewVar formats a variable-size-key NV-Tree.
func NewVar(pool *scm.Pool, cfg Config) (*VarTree, error) {
	b, err := create(pool, cfg, modeVar)
	if err != nil {
		return nil, err
	}
	return &VarTree{base: b}, nil
}

func create(pool *scm.Pool, cfg Config, mode int) (*base, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	if !pool.Root().IsNull() {
		return nil, fmt.Errorf("nvtree: pool already contains a tree")
	}
	if _, err := pool.AllocRoot(metaSize); err != nil {
		return nil, err
	}
	b := &base{pool: pool, mode: mode, leafCap: cfg.LeafCap, valSize: cfg.ValueSize, plnCap: cfg.InnerCap, meta: pool.Root().Offset}
	pool.WriteU64(b.meta+mOffMagic, metaMagic)
	pool.WriteU64(b.meta+mOffKeyMode, uint64(mode))
	pool.WriteU64(b.meta+mOffLeafCap, uint64(cfg.LeafCap))
	pool.WriteU64(b.meta+mOffValSize, uint64(cfg.ValueSize))
	pool.Persist(b.meta, metaSize)
	return b, nil
}

// Open recovers a fixed-size-key NV-Tree: micro-log replay, then the full
// inner-node rebuild from the leaf list.
func Open(pool *scm.Pool, innerCap int) (*Tree, error) {
	b, err := open(pool, modeFixed, innerCap)
	if err != nil {
		return nil, err
	}
	return &Tree{base: b}, nil
}

// OpenVar recovers a variable-size-key NV-Tree.
func OpenVar(pool *scm.Pool, innerCap int) (*VarTree, error) {
	b, err := open(pool, modeVar, innerCap)
	if err != nil {
		return nil, err
	}
	return &VarTree{base: b}, nil
}

func open(pool *scm.Pool, mode, innerCap int) (*base, error) {
	pool.Recover()
	root := pool.Root()
	if root.IsNull() {
		return nil, fmt.Errorf("nvtree: arena has no tree")
	}
	b := &base{pool: pool, meta: root.Offset}
	if pool.ReadU64(b.meta+mOffMagic) != metaMagic {
		return nil, fmt.Errorf("nvtree: bad metadata magic")
	}
	if got := int(pool.ReadU64(b.meta + mOffKeyMode)); got != mode {
		return nil, fmt.Errorf("nvtree: key mode mismatch")
	}
	b.mode = mode
	b.leafCap = int(pool.ReadU64(b.meta + mOffLeafCap))
	b.valSize = int(pool.ReadU64(b.meta + mOffValSize))
	b.plnCap = innerCap
	if b.plnCap == 0 {
		b.plnCap = 128
	}
	b.recoverLogs()
	b.healTailBound()
	b.rebuildInner()
	return b, nil
}

// healTailBound repairs the one crash window in which a leaf is reachable
// without its "+infinity" routing bound: firstLeaf publishes the initial
// leaf through the head-cell allocation before the bound write persists, so
// a crash in between recovers a linked leaf whose bound still reads zero.
// Everywhere else the construction keeps the list's last leaf unbounded
// (leaves are never removed and splits clamp the upper half), so re-stamping
// the tail is idempotent and must run after micro-log replay settles the
// list.
func (b *base) healTailBound() {
	h := b.head()
	if h.IsNull() {
		return
	}
	l := h.Offset
	for {
		next := b.leafNext(l)
		if next.IsNull() {
			break
		}
		l = next.Offset
	}
	if b.mode == modeFixed {
		if b.leafBoundF(l) != infBound {
			b.setLeafBoundF(l, infBound)
		}
	} else if b.pool.ReadU64(l+lOffBound+scm.PPtrSize) != ^uint64(0) {
		b.setLeafBoundInfV(l)
	}
}

// Pool returns the backing pool.
func (b *base) Pool() *scm.Pool { return b.pool }

// Len returns the number of live keys.
func (b *base) Len() int { return b.size }

// Rebuilds returns how many full inner-node rebuilds have happened.
func (b *base) Rebuilds() uint64 { return b.rebuilds }

// DRAMBytes estimates the DRAM held by the capacity-padded inner nodes.
func (b *base) DRAMBytes() uint64 {
	var total uint64
	for i := range b.plns {
		total += uint64(cap(b.plns[i].leaves))*8 + uint64(cap(b.plns[i].sepsF))*8 + 64
		for _, s := range b.plns[i].sepsV {
			total += uint64(len(s)) + 24
		}
	}
	total += uint64(len(b.plns)) * 40 // directory
	return total
}

// --- leaf accessors -----------------------------------------------------------

func (b *base) head() scm.PPtr { return b.pool.ReadPPtr(b.meta + mOffHead) }

func (b *base) setHead(p scm.PPtr) {
	b.pool.WritePPtr(b.meta+mOffHead, p)
	b.pool.Persist(b.meta+mOffHead, scm.PPtrSize)
}

func (b *base) leafCount(l uint64) int     { return int(b.pool.ReadU64(l + lOffCount)) }
func (b *base) leafNext(l uint64) scm.PPtr { return b.pool.ReadPPtr(l + lOffNext) }

func (b *base) setLeafNext(l uint64, p scm.PPtr) {
	b.pool.WritePPtr(l+lOffNext, p)
	b.pool.Persist(l+lOffNext, scm.PPtrSize)
}

func (b *base) entryOff(l uint64, i int) uint64 {
	return l + b.entriesOff() + uint64(i)*b.entrySize()
}

func (b *base) entryFlag(l uint64, i int) uint64 { return b.pool.ReadU64(b.entryOff(l, i)) }

func (b *base) entryKeyF(l uint64, i int) uint64 { return b.pool.ReadU64(b.entryOff(l, i) + 8) }

func (b *base) entryKeyV(l uint64, i int) []byte {
	pk := b.pool.ReadPPtr(b.entryOff(l, i) + 8)
	klen := b.pool.ReadU64(b.entryOff(l, i) + 8 + scm.PPtrSize)
	return b.pool.ReadBytes(pk.Offset, klen)
}

func (b *base) entryKeyEqualsV(l uint64, i int, key []byte) bool {
	if b.pool.ReadU64(b.entryOff(l, i)+8+scm.PPtrSize) != uint64(len(key)) {
		return false
	}
	pk := b.pool.ReadPPtr(b.entryOff(l, i) + 8)
	return b.pool.EqualBytes(pk.Offset, key)
}

func (b *base) entryValF(l uint64, i int) uint64 {
	return b.pool.ReadU64(b.entryOff(l, i) + 16)
}

func (b *base) entryValV(l uint64, i int) []byte {
	return b.pool.ReadBytes(b.entryOff(l, i)+8+scm.PPtrSize+8, uint64(b.valSize))
}

// appendEntry writes one log entry and commits it by bumping the counter —
// the NV-Tree's p-atomic append. The caller guarantees space.
func (b *base) appendEntry(l uint64, flag uint64, fk uint64, vk []byte, valF uint64, valV []byte) error {
	n := b.leafCount(l)
	if n >= b.leafCap {
		panic("nvtree: append to full leaf")
	}
	off := b.entryOff(l, n)
	b.pool.WriteU64(off, flag)
	if b.mode == modeFixed {
		b.pool.WriteU64(off+8, fk)
		b.pool.WriteU64(off+16, valF)
		b.pool.Persist(off, 24)
	} else {
		b.pool.WriteU64(off+8+scm.PPtrSize, uint64(len(vk)))
		// One persist spanning flag..klen: the flag word at off has no other
		// persist covering it in the var path (the fixed path's Persist(off,
		// 24) does), and the count bump below must not commit an entry whose
		// flag is still only in the cache.
		b.pool.Persist(off, 8+scm.PPtrSize+8)
		pk, err := b.pool.Alloc(off+8, uint64(len(vk)))
		if err != nil {
			return err
		}
		b.pool.WriteBytes(pk.Offset, vk)
		b.pool.Persist(pk.Offset, uint64(len(vk)))
		buf := make([]byte, b.valSize)
		copy(buf, valV)
		b.pool.WriteBytes(off+8+scm.PPtrSize+8, buf)
		b.pool.Persist(off+8+scm.PPtrSize+8, uint64(len(buf)))
	}
	b.pool.WriteU64(l+lOffCount, uint64(n+1))
	b.pool.Persist(l+lOffCount, 8)
	return nil
}

// findInLeaf performs the NV-Tree's reverse linear scan: the most recent
// entry for the key decides (insert = live, delete = gone).
func (b *base) findInLeaf(l uint64, fk uint64, vk []byte) (idx int, live bool) {
	b.Searches.Add(1)
	n := b.leafCount(l)
	for i := n - 1; i >= 0; i-- {
		b.KeyProbes.Add(1)
		match := false
		if b.mode == modeFixed {
			match = b.entryKeyF(l, i) == fk
		} else {
			match = b.entryKeyEqualsV(l, i, vk)
		}
		if match {
			return i, b.entryFlag(l, i) == entryInsert
		}
	}
	return -1, false
}

// liveEntries returns the leaf's live (key -> latest entry index) pairs in
// ascending key order.
func (b *base) liveEntries(l uint64) (idxs []int) {
	n := b.leafCount(l)
	if b.mode == modeFixed {
		seen := make(map[uint64]bool, n)
		for i := n - 1; i >= 0; i-- {
			k := b.entryKeyF(l, i)
			if seen[k] {
				continue
			}
			seen[k] = true
			if b.entryFlag(l, i) == entryInsert {
				idxs = append(idxs, i)
			}
		}
		sort.Slice(idxs, func(x, y int) bool { return b.entryKeyF(l, idxs[x]) < b.entryKeyF(l, idxs[y]) })
		return idxs
	}
	seen := make(map[string]bool, n)
	for i := n - 1; i >= 0; i-- {
		k := string(b.entryKeyV(l, i))
		if seen[k] {
			continue
		}
		seen[k] = true
		if b.entryFlag(l, i) == entryInsert {
			idxs = append(idxs, i)
		}
	}
	sort.Slice(idxs, func(x, y int) bool {
		return bytes.Compare(b.entryKeyV(l, idxs[x]), b.entryKeyV(l, idxs[y])) < 0
	})
	return idxs
}
