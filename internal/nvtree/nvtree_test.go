package nvtree

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"fptree/internal/crashtest"
	"fptree/internal/scm"
)

func newPool() *scm.Pool {
	return scm.NewPool(256<<20, scm.LatencyConfig{CacheBytes: -1})
}

func newTree(t *testing.T, cfg Config) *Tree {
	t.Helper()
	tr, err := New(newPool(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestEmpty(t *testing.T) {
	tr := newTree(t, Config{LeafCap: 8, InnerCap: 4})
	if _, ok := tr.Find(1); ok {
		t.Fatal("find on empty")
	}
	if ok, _ := tr.Delete(1); ok {
		t.Fatal("delete on empty")
	}
}

func TestInsertFindRandom(t *testing.T) {
	tr := newTree(t, Config{LeafCap: 8, InnerCap: 8})
	rng := rand.New(rand.NewSource(1))
	const n = 4000
	for _, k := range rng.Perm(n) {
		if err := tr.Insert(uint64(k)+1, uint64(k)*3); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Len() != n {
		t.Fatalf("Len = %d", tr.Len())
	}
	for k := 1; k <= n; k++ {
		v, ok := tr.Find(uint64(k))
		if !ok || v != uint64(k-1)*3 {
			t.Fatalf("find(%d) = %d,%v", k, v, ok)
		}
	}
	if tr.Rebuilds() == 0 {
		t.Fatal("expected at least one inner rebuild with InnerCap 8")
	}
}

func TestAppendSemantics(t *testing.T) {
	tr := newTree(t, Config{LeafCap: 16, InnerCap: 8})
	if err := tr.Insert(5, 1); err != nil {
		t.Fatal(err)
	}
	if err := tr.Insert(5, 2); err != nil { // update by re-insert
		t.Fatal(err)
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if v, _ := tr.Find(5); v != 2 {
		t.Fatalf("latest value = %d", v)
	}
	if ok, _ := tr.Delete(5); !ok {
		t.Fatal("delete failed")
	}
	if _, ok := tr.Find(5); ok {
		t.Fatal("tombstone not honored")
	}
	if ok, _ := tr.Delete(5); ok {
		t.Fatal("double delete reported true")
	}
	// Re-insert after delete.
	if err := tr.Insert(5, 3); err != nil {
		t.Fatal(err)
	}
	if v, _ := tr.Find(5); v != 3 {
		t.Fatalf("after re-insert = %d", v)
	}
}

func TestDeleteHeavyTriggersCompaction(t *testing.T) {
	tr := newTree(t, Config{LeafCap: 8, InnerCap: 8})
	// Insert/delete cycles in one key range force splits on logs full of
	// tombstones, hitting the compaction and drop-leaf paths.
	for round := 0; round < 20; round++ {
		for k := uint64(1); k <= 50; k++ {
			if err := tr.Insert(k, k); err != nil {
				t.Fatal(err)
			}
		}
		for k := uint64(1); k <= 50; k++ {
			if ok, _ := tr.Delete(k); !ok {
				t.Fatalf("round %d: delete(%d) failed", round, k)
			}
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d", tr.Len())
	}
	for k := uint64(1); k <= 50; k++ {
		if _, ok := tr.Find(k); ok {
			t.Fatalf("key %d resurrected", k)
		}
	}
}

func TestScan(t *testing.T) {
	tr := newTree(t, Config{LeafCap: 8, InnerCap: 8})
	rng := rand.New(rand.NewSource(3))
	for _, k := range rng.Perm(1000) {
		if err := tr.Insert(uint64(k)*2+2, uint64(k)); err != nil {
			t.Fatal(err)
		}
	}
	var got []uint64
	tr.Scan(100, func(k, v uint64) bool {
		got = append(got, k)
		return len(got) < 100
	})
	want := uint64(100)
	for i, k := range got {
		if k != want {
			t.Fatalf("scan[%d] = %d want %d", i, k, want)
		}
		want += 2
	}
}

func TestRecovery(t *testing.T) {
	pool := newPool()
	tr, err := New(pool, Config{LeafCap: 8, InnerCap: 8})
	if err != nil {
		t.Fatal(err)
	}
	const n = 2000
	for k := uint64(1); k <= n; k++ {
		if err := tr.Insert(k, k+9); err != nil {
			t.Fatal(err)
		}
	}
	for k := uint64(1); k <= n; k += 3 {
		if _, err := tr.Delete(k); err != nil {
			t.Fatal(err)
		}
	}
	pool.Crash()
	tr2, err := Open(pool, 8)
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(1); k <= n; k++ {
		v, ok := tr2.Find(k)
		if k%3 == 1 {
			if ok {
				t.Fatalf("deleted %d resurrected", k)
			}
		} else if !ok || v != k+9 {
			t.Fatalf("find(%d) = %d,%v", k, v, ok)
		}
	}
	if tr2.DRAMBytes() == 0 {
		t.Fatal("DRAM accounting empty")
	}
}

func TestCrashAtEveryFlush(t *testing.T) {
	pool := newPool()
	tr, err := New(pool, Config{LeafCap: 8, InnerCap: 8})
	if err != nil {
		t.Fatal(err)
	}
	acked := map[uint64]uint64{}
	for k := uint64(1); k <= 300; k++ {
		if err := tr.Insert(k*5, k); err != nil {
			t.Fatal(err)
		}
		acked[k*5] = k
	}
	rng := rand.New(rand.NewSource(7))
	step := int64(1)
	for op := 0; op < 150; op++ {
		k := rng.Uint64()%100000 + 2
		if _, dup := acked[k]; dup {
			continue
		}
		pool.FailAfterFlushes(step)
		crashed, opErr := crashtest.Crashes(func() error {
			return tr.Insert(k, k+1)
		})
		pool.FailAfterFlushes(-1)
		if opErr != nil {
			t.Fatal(opErr)
		}
		if !crashed {
			acked[k] = k + 1
			step = 1
			continue
		}
		step++
		pool.Crash()
		tr, err = Open(pool, 8)
		if err != nil {
			t.Fatalf("op %d step %d: %v", op, step, err)
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("op %d step %d: %v", op, step, err)
		}
		for ak, av := range acked {
			got, ok := tr.Find(ak)
			if !ok || got != av {
				t.Fatalf("op %d step %d: acked %d = %d,%v want %d", op, step, ak, got, ok, av)
			}
		}
		op--
	}
}

func TestQuickOracle(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr, err := New(newPool(), Config{LeafCap: 8, InnerCap: 4})
		if err != nil {
			t.Fatal(err)
		}
		oracle := map[uint64]uint64{}
		for i := 0; i < 800; i++ {
			k := rng.Uint64()%200 + 1
			switch rng.Intn(3) {
			case 0:
				v := rng.Uint64()
				if err := tr.Insert(k, v); err != nil {
					t.Fatal(err)
				}
				oracle[k] = v
			case 1:
				ok, _ := tr.Delete(k)
				if _, want := oracle[k]; ok != want {
					t.Fatalf("delete(%d) = %v want %v", k, ok, want)
				}
				delete(oracle, k)
			case 2:
				v, ok := tr.Find(k)
				want, wok := oracle[k]
				if ok != wok || (ok && v != want) {
					t.Fatalf("find(%d) = %d,%v want %d,%v", k, v, ok, want, wok)
				}
			}
		}
		return tr.Len() == len(oracle)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestVarTree(t *testing.T) {
	pool := newPool()
	tr, err := NewVar(pool, Config{LeafCap: 8, InnerCap: 8, ValueSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	key := func(i int) []byte { return []byte(fmt.Sprintf("key-%06d", i)) }
	for i := 0; i < 1500; i++ {
		if err := tr.Insert(key(i), key(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 1500; i += 2 {
		if ok, _ := tr.Delete(key(i)); !ok {
			t.Fatalf("delete %d failed", i)
		}
	}
	pool.Crash()
	tr2, err := OpenVar(pool, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1500; i++ {
		v, ok := tr2.Find(key(i))
		if i%2 == 0 {
			if ok {
				t.Fatalf("deleted %d present", i)
			}
		} else if !ok || string(v[:10]) != string(key(i)[:10]) {
			t.Fatalf("find(%d) = %q,%v", i, v, ok)
		}
	}
}

func TestProbesLinear(t *testing.T) {
	// Reverse linear scan: ~(fill+1)/2 probes per successful search.
	tr := newTree(t, Config{LeafCap: 32, InnerCap: 64})
	rng := rand.New(rand.NewSource(5))
	keys := make([]uint64, 0, 10000)
	for i := 0; i < 10000; i++ {
		k := rng.Uint64()>>1 + 1
		keys = append(keys, k)
		if err := tr.Insert(k, k); err != nil {
			t.Fatal(err)
		}
	}
	tr.Searches.Store(0)
	tr.KeyProbes.Store(0)
	for _, k := range keys {
		if _, ok := tr.Find(k); !ok {
			t.Fatal("missing")
		}
	}
	avg := float64(tr.KeyProbes.Load()) / float64(tr.Searches.Load())
	if avg < 3 {
		t.Fatalf("avg probes %.2f: too low for a linear scan", avg)
	}
}

func TestConcurrentStripes(t *testing.T) {
	ct, err := CNew(newPool(), Config{LeafCap: 16, InnerCap: 16})
	if err != nil {
		t.Fatal(err)
	}
	const workers = 6
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			oracle := map[uint64]uint64{}
			base := uint64(w) << 32
			for i := 0; i < 1500; i++ {
				k := base + rng.Uint64()%400 + 1
				switch rng.Intn(3) {
				case 0:
					v := rng.Uint64()
					if err := ct.Insert(k, v); err != nil {
						t.Error(err)
						return
					}
					oracle[k] = v
				case 1:
					ok, _ := ct.Delete(k)
					if _, want := oracle[k]; ok != want {
						t.Errorf("delete(%d) = %v want %v", k, ok, want)
						return
					}
					delete(oracle, k)
				case 2:
					v, ok := ct.Find(k)
					want, wok := oracle[k]
					if ok != wok || (ok && v != want) {
						t.Errorf("find(%d) = %d,%v want %d,%v", k, v, ok, want, wok)
						return
					}
				}
			}
			for k, v := range oracle {
				got, ok := ct.Find(k)
				if !ok || got != v {
					t.Errorf("final find(%d) = %d,%v want %d", k, got, ok, v)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestConcurrentRecovery(t *testing.T) {
	pool := newPool()
	ct, err := CNew(pool, Config{LeafCap: 16, InnerCap: 16})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				k := uint64(w*1000+i) + 1
				if err := ct.Insert(k, k); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	pool.Crash()
	ct2, err := COpen(pool, 16)
	if err != nil {
		t.Fatal(err)
	}
	if ct2.Len() != 4000 {
		t.Fatalf("recovered Len = %d", ct2.Len())
	}
	for k := uint64(1); k <= 4000; k++ {
		if v, ok := ct2.Find(k); !ok || v != k {
			t.Fatalf("find(%d) = %d,%v", k, v, ok)
		}
	}
}
