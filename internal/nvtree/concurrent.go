package nvtree

import (
	"sync"
	"sync/atomic"

	"fptree/internal/scm"
)

// CTree is the concurrent fixed-size-key NV-Tree. Reads share a structure
// lock; appends serialize per leaf; splits, rebuilds and leaf removals take
// the exclusive structure lock. The exclusive lock on every structure
// modification is what limits the NV-Tree's write scalability in the paper's
// Figures 9-11 (inner nodes are contiguous, so a split cannot be localized).
type CTree struct {
	mu    sync.RWMutex
	locks leafLocks
	size  atomic.Int64
	t     *Tree
}

// CVarTree is the concurrent variable-size-key NV-Tree.
type CVarTree struct {
	mu    sync.RWMutex
	locks leafLocks
	size  atomic.Int64
	t     *VarTree
}

// leafLocks is a striped lock table for per-leaf append serialization.
type leafLocks struct {
	mus [256]sync.Mutex
}

func (l *leafLocks) lock(off uint64) *sync.Mutex {
	m := &l.mus[(off/64)%256]
	m.Lock()
	return m
}

// CNew formats a concurrent fixed-size-key NV-Tree.
func CNew(pool *scm.Pool, cfg Config) (*CTree, error) {
	t, err := New(pool, cfg)
	if err != nil {
		return nil, err
	}
	return &CTree{t: t}, nil
}

// COpen recovers a concurrent fixed-size-key NV-Tree.
func COpen(pool *scm.Pool, innerCap int) (*CTree, error) {
	t, err := Open(pool, innerCap)
	if err != nil {
		return nil, err
	}
	c := &CTree{t: t}
	c.size.Store(int64(t.Len()))
	return c, nil
}

// CNewVar formats a concurrent variable-size-key NV-Tree.
func CNewVar(pool *scm.Pool, cfg Config) (*CVarTree, error) {
	t, err := NewVar(pool, cfg)
	if err != nil {
		return nil, err
	}
	return &CVarTree{t: t}, nil
}

// COpenVar recovers a concurrent variable-size-key NV-Tree.
func COpenVar(pool *scm.Pool, innerCap int) (*CVarTree, error) {
	t, err := OpenVar(pool, innerCap)
	if err != nil {
		return nil, err
	}
	c := &CVarTree{t: t}
	c.size.Store(int64(t.Len()))
	return c, nil
}

// Len returns the number of live keys.
func (c *CTree) Len() int { return int(c.size.Load()) }

// Pool returns the backing pool.
func (c *CTree) Pool() *scm.Pool { return c.t.Pool() }

// CheckInvariants validates the tree's structural invariants under the
// exclusive structure lock (testing and recovery aid).
func (c *CTree) CheckInvariants() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t.CheckInvariants()
}

// Find returns the value stored under key.
func (c *CTree) Find(key uint64) (uint64, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if len(c.t.plns) == 0 {
		return 0, false
	}
	_, _, l := c.t.findLeaf(key, nil)
	m := c.locks.lock(l)
	defer m.Unlock()
	e, live := c.t.findInLeaf(l, key, nil)
	if !live {
		return 0, false
	}
	return c.t.entryValF(l, e), true
}

// mutate runs fn under the reader structure lock with the target leaf's
// append lock held; when the leaf is full (or the tree empty), it retries
// under the exclusive lock, where splits and rebuilds are safe.
func (c *CTree) mutate(key uint64, fn func() error) error {
	c.mu.RLock()
	if len(c.t.plns) != 0 {
		_, _, l := c.t.findLeaf(key, nil)
		if c.t.leafCount(l) < c.t.leafCap {
			m := c.locks.lock(l)
			// Re-check under the leaf lock: a concurrent appender may have
			// filled the leaf.
			if _, _, l2 := c.t.findLeaf(key, nil); l2 == l && c.t.leafCount(l) < c.t.leafCap {
				err := fn()
				m.Unlock()
				c.mu.RUnlock()
				return err
			}
			m.Unlock()
		}
	}
	c.mu.RUnlock()
	// Slow path: exclusive structure lock (split / first leaf / rebuild).
	c.mu.Lock()
	defer c.mu.Unlock()
	return fn()
}

// Insert appends a key-value pair (upsert semantics).
func (c *CTree) Insert(key, value uint64) error {
	return c.mutate(key, func() error {
		existed := false
		if len(c.t.plns) != 0 {
			_, _, existed = c.t.doFind(key, nil)
		}
		if err := c.t.doInsert(entryInsert, key, nil, value, nil); err != nil {
			return err
		}
		if !existed {
			c.size.Add(1)
		}
		return nil
	})
}

// Update rewrites the value under key.
func (c *CTree) Update(key, value uint64) (bool, error) {
	ok := false
	err := c.mutate(key, func() error {
		if _, _, found := c.t.doFind(key, nil); !found {
			return nil
		}
		ok = true
		return c.t.doInsert(entryInsert, key, nil, value, nil)
	})
	return ok, err
}

// Upsert inserts or updates.
func (c *CTree) Upsert(key, value uint64) error { return c.Insert(key, value) }

// Delete appends a tombstone.
func (c *CTree) Delete(key uint64) (bool, error) {
	ok := false
	err := c.mutate(key, func() error {
		if _, _, found := c.t.doFind(key, nil); !found {
			return nil
		}
		ok = true
		if err := c.t.doInsert(entryDelete, key, nil, 0, nil); err != nil {
			return err
		}
		c.size.Add(-1)
		return nil
	})
	return ok, err
}

// Scan visits live pairs with key >= from under the structure lock.
func (c *CTree) Scan(from uint64, fn func(k, v uint64) bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	c.t.Scan(from, fn)
}

// Stats: full inner rebuilds so far.
func (c *CTree) Rebuilds() uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.t.Rebuilds()
}

// --- var-key concurrent API -------------------------------------------------

// Len returns the number of live keys.
func (c *CVarTree) Len() int { return int(c.size.Load()) }

// Pool returns the backing pool.
func (c *CVarTree) Pool() *scm.Pool { return c.t.Pool() }

// CheckInvariants validates the tree's structural invariants under the
// exclusive structure lock (testing and recovery aid).
func (c *CVarTree) CheckInvariants() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t.CheckInvariants()
}

// Find returns a copy of the value stored under key.
func (c *CVarTree) Find(key []byte) ([]byte, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if len(c.t.plns) == 0 {
		return nil, false
	}
	_, _, l := c.t.findLeaf(0, key)
	m := c.locks.lock(l)
	defer m.Unlock()
	e, live := c.t.findInLeaf(l, 0, key)
	if !live {
		return nil, false
	}
	return c.t.entryValV(l, e), true
}

func (c *CVarTree) mutate(key []byte, fn func() error) error {
	c.mu.RLock()
	if len(c.t.plns) != 0 {
		_, _, l := c.t.findLeaf(0, key)
		if c.t.leafCount(l) < c.t.leafCap {
			m := c.locks.lock(l)
			if _, _, l2 := c.t.findLeaf(0, key); l2 == l && c.t.leafCount(l) < c.t.leafCap {
				err := fn()
				m.Unlock()
				c.mu.RUnlock()
				return err
			}
			m.Unlock()
		}
	}
	c.mu.RUnlock()
	c.mu.Lock()
	defer c.mu.Unlock()
	return fn()
}

// Insert appends a key-value pair (upsert semantics).
func (c *CVarTree) Insert(key, value []byte) error {
	return c.mutate(key, func() error {
		existed := false
		if len(c.t.plns) != 0 {
			_, _, existed = c.t.doFind(0, key)
		}
		if err := c.t.doInsert(entryInsert, 0, key, 0, value); err != nil {
			return err
		}
		if !existed {
			c.size.Add(1)
		}
		return nil
	})
}

// Update rewrites the value under key.
func (c *CVarTree) Update(key, value []byte) (bool, error) {
	ok := false
	err := c.mutate(key, func() error {
		if _, _, found := c.t.doFind(0, key); !found {
			return nil
		}
		ok = true
		return c.t.doInsert(entryInsert, 0, key, 0, value)
	})
	return ok, err
}

// Upsert inserts or updates.
func (c *CVarTree) Upsert(key, value []byte) error { return c.Insert(key, value) }

// Delete appends a tombstone.
func (c *CVarTree) Delete(key []byte) (bool, error) {
	ok := false
	err := c.mutate(key, func() error {
		if _, _, found := c.t.doFind(0, key); !found {
			return nil
		}
		ok = true
		if err := c.t.doInsert(entryDelete, 0, key, 0, nil); err != nil {
			return err
		}
		c.size.Add(-1)
		return nil
	})
	return ok, err
}

// Scan visits live pairs with key >= from under the structure lock.
func (c *CVarTree) Scan(from []byte, fn func(k, v []byte) bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	c.t.Scan(from, fn)
}
