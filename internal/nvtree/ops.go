package nvtree

import (
	"bytes"
	"sort"

	"fptree/internal/scm"
)

// --- DRAM inner structure -------------------------------------------------------

// plnIdx locates the leaf parent covering the key via binary search over the
// directory of PLN max keys (keys greater than every max key go to the last
// PLN).
func (b *base) plnIdx(fk uint64, vk []byte) int {
	n := len(b.plns)
	i := sort.Search(n, func(i int) bool {
		if b.mode == modeFixed {
			return b.plns[i].maxKeyF >= fk
		}
		if b.plns[i].maxKeyV == nil && b.plns[i].vInf {
			return true // +infinity bound
		}
		return bytes.Compare(b.plns[i].maxKeyV, vk) >= 0
	})
	if i == n {
		i = n - 1
	}
	return i
}

// leafIdx locates the leaf within the PLN covering the key.
func (b *base) leafIdx(p *pln, fk uint64, vk []byte) int {
	n := len(p.leaves)
	i := sort.Search(n-1, func(i int) bool {
		if b.mode == modeFixed {
			return p.sepsF[i] >= fk
		}
		if p.sepsV[i] == nil {
			return true // +infinity bound
		}
		return bytes.Compare(p.sepsV[i], vk) >= 0
	})
	return i
}

// findLeaf returns (plnIndex, leafIndex, leafOffset).
func (b *base) findLeaf(fk uint64, vk []byte) (int, int, uint64) {
	pi := b.plnIdx(fk, vk)
	p := &b.plns[pi]
	li := b.leafIdx(p, fk, vk)
	return pi, li, p.leaves[li]
}

// prevLeafOf returns the left list neighbor of the leaf at (pi, li), or 0.
func (b *base) prevLeafOf(pi, li int) uint64 {
	if li > 0 {
		return b.plns[pi].leaves[li-1]
	}
	if pi > 0 {
		prev := b.plns[pi-1].leaves
		return prev[len(prev)-1]
	}
	return 0
}

// rebuildInner reconstructs all leaf parents from the persistent leaf list —
// the NV-Tree's expensive global rebuild. Parents are left half-full and
// capacity-padded, reproducing both the rebuild cost and the DRAM footprint.
func (b *base) rebuildInner() {
	b.rebuilds++
	type leafInfo struct {
		off  uint64
		mkF  uint64
		mkV  []byte
		live int
	}
	var leaves []leafInfo
	size := 0
	for p := b.head(); !p.IsNull(); {
		l := p.Offset
		next := b.leafNext(l)
		li := leafInfo{off: l, live: len(b.liveEntries(l))}
		if b.mode == modeFixed {
			li.mkF = b.leafBoundF(l)
		} else {
			li.mkV = b.leafBoundV(l) // nil = +infinity
		}
		size += li.live
		leaves = append(leaves, li)
		p = next
	}
	b.size = size
	b.plns = b.plns[:0]
	fill := b.plnCap / 2
	if fill < 2 {
		fill = 2
	}
	for at := 0; at < len(leaves); at += fill {
		end := at + fill
		if end > len(leaves) {
			end = len(leaves)
		}
		p := pln{leaves: make([]uint64, 0, b.plnCap)}
		if b.mode == modeFixed {
			p.sepsF = make([]uint64, 0, b.plnCap)
		} else {
			p.sepsV = make([][]byte, 0, b.plnCap)
		}
		for i := at; i < end; i++ {
			p.leaves = append(p.leaves, leaves[i].off)
			if i < end-1 {
				if b.mode == modeFixed {
					p.sepsF = append(p.sepsF, leaves[i].mkF)
				} else {
					p.sepsV = append(p.sepsV, leaves[i].mkV)
				}
			}
		}
		p.maxKeyF = leaves[end-1].mkF
		p.maxKeyV = leaves[end-1].mkV
		p.vInf = b.mode == modeVar && p.maxKeyV == nil
		b.plns = append(b.plns, p)
	}
}

// replaceLeafInPLN swaps the split leaf for its two replacements, or
// triggers the global rebuild when the parent is full.
func (b *base) replaceLeafInPLN(pi, li int, sepF uint64, sepV []byte, l1, l2 uint64) {
	p := &b.plns[pi]
	if len(p.leaves) >= b.plnCap {
		b.rebuildInner()
		return
	}
	wasLast := li == len(p.leaves)-1
	p.leaves = append(p.leaves, 0)
	copy(p.leaves[li+2:], p.leaves[li+1:])
	p.leaves[li] = l1
	p.leaves[li+1] = l2
	if b.mode == modeFixed {
		p.sepsF = append(p.sepsF, 0)
		copy(p.sepsF[li+1:], p.sepsF[li:])
		p.sepsF[li] = sepF
		if wasLast {
			p.maxKeyF = b.leafBoundF(l2)
		}
	} else {
		p.sepsV = append(p.sepsV, nil)
		copy(p.sepsV[li+1:], p.sepsV[li:])
		p.sepsV[li] = sepV
		if wasLast {
			p.maxKeyV = b.leafBoundV(l2)
			p.vInf = p.maxKeyV == nil
		}
	}
}

// --- micro-logs -----------------------------------------------------------------

type mcell struct {
	pool *scm.Pool
	off  uint64
}

func (c mcell) p(i int) scm.PPtr  { return c.pool.ReadPPtr(c.off + uint64(i)*scm.PPtrSize) }
func (c mcell) pOff(i int) uint64 { return c.off + uint64(i)*scm.PPtrSize }

func (c mcell) set(i int, v scm.PPtr) {
	c.pool.WritePPtr(c.off+uint64(i)*scm.PPtrSize, v)
	c.pool.Persist(c.off+uint64(i)*scm.PPtrSize, scm.PPtrSize)
}

func (c mcell) reset() {
	for i := 0; i < 4; i++ {
		c.pool.WritePPtr(c.off+uint64(i)*scm.PPtrSize, scm.PPtr{})
	}
	c.pool.Persist(c.off, 4*scm.PPtrSize)
}

func (b *base) splitLog() mcell { return mcell{b.pool, b.meta + mOffSplitLog} }
func (b *base) delLog() mcell   { return mcell{b.pool, b.meta + mOffDelLog} }

// --- base operations -------------------------------------------------------------

func (b *base) doFind(fk uint64, vk []byte) (int, uint64, bool) {
	if len(b.plns) == 0 {
		return -1, 0, false
	}
	_, _, l := b.findLeaf(fk, vk)
	idx, live := b.findInLeaf(l, fk, vk)
	if !live {
		return -1, 0, false
	}
	return idx, l, true
}

// doInsert appends the pair, splitting (or compacting) the leaf first when
// its log is full.
func (b *base) doInsert(flag uint64, fk uint64, vk []byte, valF uint64, valV []byte) error {
	if len(b.plns) == 0 {
		if err := b.firstLeaf(); err != nil {
			return err
		}
	}
	pi, li, l := b.findLeaf(fk, vk)
	for b.leafCount(l) >= b.leafCap {
		// Splitting can drop an all-dead leaf, rerouting the key to a
		// neighbor that may itself be full — loop until there is room.
		if err := b.splitLeaf(pi, li, l); err != nil {
			return err
		}
		pi, li, l = b.findLeaf(fk, vk)
	}
	return b.appendEntry(l, flag, fk, vk, valF, valV)
}

func (b *base) firstLeaf() error {
	ptr, err := b.pool.Alloc(b.meta+mOffHead, b.leafSize())
	if err != nil {
		return err
	}
	if b.mode == modeFixed {
		b.setLeafBoundF(ptr.Offset, infBound)
		b.plns = append(b.plns, pln{leaves: []uint64{ptr.Offset}, maxKeyF: infBound})
	} else {
		b.setLeafBoundInfV(ptr.Offset)
		b.plns = append(b.plns, pln{leaves: []uint64{ptr.Offset}, vInf: true})
	}
	return nil
}

// splitLeaf compacts the full leaf's live entries into two fresh leaves
// (sorted, half each) under the split micro-log, relinks the list, frees the
// old leaf, and updates the DRAM parent. An all-dead leaf is removed
// entirely (delete micro-log).
func (b *base) splitLeaf(pi, li int, l uint64) error {
	live := b.liveEntries(l)
	if len(live) <= 1 {
		// Nothing (or one entry) survives the log: compact 1:1 instead of
		// splitting. Leaves are never removed — their routing bounds are
		// immutable, which keeps the directory consistent forever.
		return b.compactLeaf(pi, li, l, live)
	}
	log := b.splitLog()
	log.set(0, scm.PPtr{ArenaID: b.pool.ID(), Offset: l})
	if _, err := b.pool.Alloc(log.pOff(1), b.leafSize()); err != nil {
		log.reset()
		return err
	}
	if _, err := b.pool.Alloc(log.pOff(2), b.leafSize()); err != nil {
		b.pool.Free(log.pOff(1), b.leafSize())
		log.reset()
		return err
	}
	n1, n2 := log.p(1).Offset, log.p(2).Offset
	half := (len(live) + 1) / 2
	b.fillLeaf(n1, l, live[:half], scm.PPtr{ArenaID: b.pool.ID(), Offset: n2})
	b.fillLeaf(n2, l, live[half:], b.leafNext(l))
	sepE := live[half-1]
	var sepF uint64
	var sepV []byte
	if b.mode == modeFixed {
		sepF = b.entryKeyF(l, sepE)
		b.setLeafBoundF(n1, sepF)
		if old := b.leafBoundF(l); old < sepF {
			// The split leaf was the clamp target holding over-bound keys:
			// the upper half keeps covering everything greater.
			b.setLeafBoundF(n2, infBound)
		} else {
			b.setLeafBoundF(n2, old)
		}
	} else {
		sepV = b.entryKeyV(l, sepE)
		if err := b.setLeafBoundV(n1, sepV); err != nil {
			return err
		}
		if old := b.leafBoundV(l); old != nil && bytes.Compare(old, sepV) < 0 {
			b.setLeafBoundInfV(n2)
		} else {
			b.copyLeafBound(n2, l)
		}
	}
	// Link: one p-atomic pointer update publishes both leaves.
	prev := b.prevLeafOf(pi, li)
	if prev == 0 {
		b.setHead(scm.PPtr{ArenaID: b.pool.ID(), Offset: n1})
	} else {
		log.set(3, scm.PPtr{ArenaID: b.pool.ID(), Offset: prev})
		b.setLeafNext(prev, scm.PPtr{ArenaID: b.pool.ID(), Offset: n1})
	}
	b.pool.Free(log.pOff(0), b.leafSize())
	log.reset()
	b.replaceLeafInPLN(pi, li, sepF, sepV, n1, n2)
	return nil
}

// fillLeaf copies the given live entries of src into the fresh leaf dst and
// persists count and next pointer. Variable-size keys keep pointing at the
// same key blocks; ownership moves with the only live reference.
func (b *base) fillLeaf(dst, src uint64, idxs []int, next scm.PPtr) {
	es := b.entrySize()
	for i, e := range idxs {
		buf := b.pool.ReadBytes(b.entryOff(src, e), es)
		b.pool.WriteBytes(b.entryOff(dst, i), buf)
	}
	b.pool.Persist(dst+b.entriesOff(), uint64(len(idxs))*es)
	b.pool.WritePPtr(dst+lOffNext, next)
	b.pool.Persist(dst+lOffNext, scm.PPtrSize)
	b.pool.WriteU64(dst+lOffCount, uint64(len(idxs)))
	b.pool.Persist(dst+lOffCount, 8)
}

// compactLeaf replaces a log-full leaf that has a single live entry with a
// fresh leaf holding just that entry (1:1 replacement, no separator change).
func (b *base) compactLeaf(pi, li int, l uint64, live []int) error {
	log := b.splitLog()
	log.set(0, scm.PPtr{ArenaID: b.pool.ID(), Offset: l})
	if _, err := b.pool.Alloc(log.pOff(1), b.leafSize()); err != nil {
		log.reset()
		return err
	}
	n1 := log.p(1).Offset
	b.fillLeaf(n1, l, live, b.leafNext(l))
	b.copyLeafBound(n1, l)
	prev := b.prevLeafOf(pi, li)
	if prev == 0 {
		b.setHead(scm.PPtr{ArenaID: b.pool.ID(), Offset: n1})
	} else {
		log.set(3, scm.PPtr{ArenaID: b.pool.ID(), Offset: prev})
		b.setLeafNext(prev, scm.PPtr{ArenaID: b.pool.ID(), Offset: n1})
	}
	b.pool.Free(log.pOff(0), b.leafSize())
	log.reset()
	b.plns[pi].leaves[li] = n1
	return nil
}

// recoverLogs replays the split and delete micro-logs.
func (b *base) recoverLogs() {
	if sl := b.splitLog(); !sl.p(0).IsNull() || !sl.p(1).IsNull() || !sl.p(2).IsNull() || !sl.p(3).IsNull() {
		cur, n1p, n2p, prev := sl.p(0), sl.p(1), sl.p(2), sl.p(3)
		linked := false
		if !n1p.IsNull() {
			if !prev.IsNull() {
				linked = b.leafNext(prev.Offset) == n1p
			} else {
				linked = b.head() == n1p
			}
		}
		switch {
		case cur.IsNull():
			// The old leaf was already freed: the split completed except for
			// the log reset.
		case !linked:
			// Roll back: discard the half-built leaves; the old leaf is
			// intact and still linked.
			if !n1p.IsNull() {
				b.pool.Free(sl.pOff(1), b.leafSize())
			}
			if !n2p.IsNull() {
				b.pool.Free(sl.pOff(2), b.leafSize())
			}
		default:
			// Linked: roll forward by freeing the old leaf.
			b.pool.Free(sl.pOff(0), b.leafSize())
		}
		sl.reset()
	}
	if dl := b.delLog(); !dl.p(0).IsNull() || !dl.p(1).IsNull() {
		cur, prev := dl.p(0), dl.p(1)
		if !cur.IsNull() {
			unlinked := false
			if !prev.IsNull() {
				unlinked = b.leafNext(prev.Offset) != cur
			} else {
				unlinked = b.head() != cur
			}
			if unlinked {
				b.pool.Free(dl.pOff(0), b.leafSize())
			}
		}
		dl.reset()
	}
}

// doScan emits live entries with key >= from in ascending order, walking the
// leaf list.
func (b *base) doScan(fromF uint64, fromV []byte, emit func(l uint64, e int) bool) {
	if len(b.plns) == 0 {
		return
	}
	_, _, l := b.findLeaf(fromF, fromV)
	for {
		for _, e := range b.liveEntries(l) {
			if b.mode == modeFixed {
				if b.entryKeyF(l, e) < fromF {
					continue
				}
			} else if bytes.Compare(b.entryKeyV(l, e), fromV) < 0 {
				continue
			}
			if !emit(l, e) {
				return
			}
		}
		next := b.leafNext(l)
		if next.IsNull() {
			return
		}
		l = next.Offset
	}
}

// --- fixed-key public API ----------------------------------------------------------

// Find returns the value stored under key.
func (t *Tree) Find(key uint64) (uint64, bool) {
	e, l, ok := t.doFind(key, nil)
	if !ok {
		return 0, false
	}
	return t.entryValF(l, e), true
}

// Insert appends a key-value pair. Inserting an existing key acts as an
// update (the append-only log keeps only the latest entry live).
func (t *Tree) Insert(key, value uint64) error {
	_, _, existed := t.doFind(key, nil)
	if err := t.doInsert(entryInsert, key, nil, value, nil); err != nil {
		return err
	}
	if !existed {
		t.size++
	}
	return nil
}

// Update rewrites the value under key; absent keys report false.
func (t *Tree) Update(key, value uint64) (bool, error) {
	if _, _, ok := t.doFind(key, nil); !ok {
		return false, nil
	}
	return true, t.doInsert(entryInsert, key, nil, value, nil)
}

// Upsert inserts or updates.
func (t *Tree) Upsert(key, value uint64) error { return t.Insert(key, value) }

// Delete appends a tombstone for key.
func (t *Tree) Delete(key uint64) (bool, error) {
	if _, _, ok := t.doFind(key, nil); !ok {
		return false, nil
	}
	if err := t.doInsert(entryDelete, key, nil, 0, nil); err != nil {
		return false, err
	}
	t.size--
	return true, nil
}

// Scan visits live pairs with key >= from in ascending order until fn
// returns false.
func (t *Tree) Scan(from uint64, fn func(k, v uint64) bool) {
	t.doScan(from, nil, func(l uint64, e int) bool {
		return fn(t.entryKeyF(l, e), t.entryValF(l, e))
	})
}

// --- var-key public API --------------------------------------------------------------

// Find returns a copy of the value stored under key.
func (t *VarTree) Find(key []byte) ([]byte, bool) {
	e, l, ok := t.doFind(0, key)
	if !ok {
		return nil, false
	}
	return t.entryValV(l, e), true
}

// Insert appends a key-value pair (upsert semantics, as with fixed keys).
func (t *VarTree) Insert(key, value []byte) error {
	_, _, existed := t.doFind(0, key)
	if err := t.doInsert(entryInsert, 0, key, 0, value); err != nil {
		return err
	}
	if !existed {
		t.size++
	}
	return nil
}

// Update rewrites the value under key; absent keys report false.
func (t *VarTree) Update(key, value []byte) (bool, error) {
	if _, _, ok := t.doFind(0, key); !ok {
		return false, nil
	}
	return true, t.doInsert(entryInsert, 0, key, 0, value)
}

// Upsert inserts or updates.
func (t *VarTree) Upsert(key, value []byte) error { return t.Insert(key, value) }

// Delete appends a tombstone for key.
func (t *VarTree) Delete(key []byte) (bool, error) {
	if _, _, ok := t.doFind(0, key); !ok {
		return false, nil
	}
	if err := t.doInsert(entryDelete, 0, key, 0, nil); err != nil {
		return false, err
	}
	t.size--
	return true, nil
}

// Scan visits live pairs with key >= from in ascending order until fn
// returns false.
func (t *VarTree) Scan(from []byte, fn func(k, v []byte) bool) {
	t.doScan(0, from, func(l uint64, e int) bool {
		return fn(t.entryKeyV(l, e), t.entryValV(l, e))
	})
}
