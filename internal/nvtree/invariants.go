package nvtree

import (
	"bytes"
	"fmt"
)

// CheckInvariants walks the whole tree and verifies the structural properties
// every crash-recovery state must preserve:
//
//   - the split and delete micro-logs are quiescent (all-null),
//   - every leaf's entry count fits its log capacity,
//   - every live key lies in the leaf's routing interval (prevBound, bound],
//   - routing bounds strictly ascend along the leaf list and only the last
//     leaf is unbounded,
//   - the DRAM directory (leaf parents plus separators) flattens to exactly
//     the persistent leaf list with separators equal to the leaf bounds,
//   - the cached size equals the total number of live entries.
//
// It returns nil when all hold, or an error naming the first violation.
func (b *base) CheckInvariants() error {
	if b.pool.ReadU64(b.meta+mOffMagic) != metaMagic {
		return fmt.Errorf("nvtree: bad metadata magic")
	}
	for i := 0; i < 4; i++ {
		if !b.splitLog().p(i).IsNull() {
			return fmt.Errorf("nvtree: split log slot %d not reset", i)
		}
	}
	for i := 0; i < 2; i++ {
		if !b.delLog().p(i).IsNull() {
			return fmt.Errorf("nvtree: delete log slot %d not reset", i)
		}
	}

	var leaves []uint64
	total := 0
	var prevF uint64 // exclusive lower bound of the current leaf
	var prevV []byte
	first := true
	for p := b.head(); !p.IsNull(); p = b.leafNext(p.Offset) {
		l := p.Offset
		leaves = append(leaves, l)
		n := b.leafCount(l)
		if n < 0 || n > b.leafCap {
			return fmt.Errorf("nvtree: leaf %#x count %d out of range [0,%d]", l, n, b.leafCap)
		}
		boundF := uint64(0)
		var boundV []byte
		unbounded := false
		if b.mode == modeFixed {
			boundF = b.leafBoundF(l)
			unbounded = boundF == infBound
		} else {
			boundV = b.leafBoundV(l)
			unbounded = boundV == nil
		}
		if unbounded && !b.leafNext(l).IsNull() {
			return fmt.Errorf("nvtree: interior leaf %#x has +infinity bound", l)
		}
		if !first && !unbounded {
			if b.mode == modeFixed {
				if boundF <= prevF {
					return fmt.Errorf("nvtree: leaf %#x bound %d not above predecessor %d", l, boundF, prevF)
				}
			} else if bytes.Compare(boundV, prevV) <= 0 {
				return fmt.Errorf("nvtree: leaf %#x bound %x not above predecessor %x", l, boundV, prevV)
			}
		}
		live := b.liveEntries(l)
		total += len(live)
		for _, e := range live {
			if b.mode == modeFixed {
				k := b.entryKeyF(l, e)
				if !first && k <= prevF {
					return fmt.Errorf("nvtree: leaf %#x key %d below interval (>%d)", l, k, prevF)
				}
				if !unbounded && k > boundF {
					return fmt.Errorf("nvtree: leaf %#x key %d above bound %d", l, k, boundF)
				}
			} else {
				k := b.entryKeyV(l, e)
				if !first && bytes.Compare(k, prevV) <= 0 {
					return fmt.Errorf("nvtree: leaf %#x key %x below interval (>%x)", l, k, prevV)
				}
				if !unbounded && bytes.Compare(k, boundV) > 0 {
					return fmt.Errorf("nvtree: leaf %#x key %x above bound %x", l, k, boundV)
				}
			}
		}
		prevF, prevV, first = boundF, boundV, false
	}
	if b.size != total {
		return fmt.Errorf("nvtree: cached size %d != %d live entries", b.size, total)
	}

	// The DRAM directory must mirror the persistent list exactly.
	at := 0
	for pi := range b.plns {
		p := &b.plns[pi]
		if len(p.leaves) == 0 {
			return fmt.Errorf("nvtree: empty leaf parent %d", pi)
		}
		for li, l := range p.leaves {
			if at >= len(leaves) {
				return fmt.Errorf("nvtree: directory lists %d+ leaves, list has %d", at+1, len(leaves))
			}
			if l != leaves[at] {
				return fmt.Errorf("nvtree: directory leaf (%d,%d)=%#x != list leaf %#x", pi, li, l, leaves[at])
			}
			if li < len(p.leaves)-1 {
				if b.mode == modeFixed {
					if p.sepsF[li] != b.leafBoundF(l) {
						return fmt.Errorf("nvtree: separator (%d,%d)=%d != leaf bound %d", pi, li, p.sepsF[li], b.leafBoundF(l))
					}
				} else if !bytes.Equal(p.sepsV[li], b.leafBoundV(l)) {
					return fmt.Errorf("nvtree: separator (%d,%d) mismatches leaf bound", pi, li)
				}
			} else {
				if b.mode == modeFixed {
					if p.maxKeyF != b.leafBoundF(l) {
						return fmt.Errorf("nvtree: parent %d max key %d != last leaf bound %d", pi, p.maxKeyF, b.leafBoundF(l))
					}
				} else {
					bound := b.leafBoundV(l)
					if p.vInf != (bound == nil) || (!p.vInf && !bytes.Equal(p.maxKeyV, bound)) {
						return fmt.Errorf("nvtree: parent %d max key mismatches last leaf bound", pi)
					}
				}
			}
			at++
		}
	}
	if at != len(leaves) {
		return fmt.Errorf("nvtree: directory covers %d leaves, list has %d", at, len(leaves))
	}
	return nil
}
