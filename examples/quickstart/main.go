// Quickstart: create an FPTree, store some pairs, scan a range, save the
// durable image to disk and reload it.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"fptree"
)

func main() {
	tree, err := fptree.Create(fptree.Options{PoolSize: 64 << 20})
	if err != nil {
		log.Fatal(err)
	}

	// Store a million sensor readings keyed by timestamp.
	for ts := uint64(1); ts <= 100_000; ts++ {
		if err := tree.Insert(ts, ts*ts%997); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("tree holds %d keys\n", tree.Len())

	// Point lookups.
	if v, ok := tree.Find(42); ok {
		fmt.Printf("reading at t=42: %d\n", v)
	}

	// Range scan: the first five readings from t=1000.
	for _, kv := range tree.ScanN(1000, 5) {
		fmt.Printf("t=%d -> %d\n", kv.Key, kv.Value)
	}

	// Updates commit with a single p-atomic bitmap store.
	if _, err := tree.Update(42, 4242); err != nil {
		log.Fatal(err)
	}
	v, _ := tree.Find(42)
	fmt.Printf("after update: %d\n", v)

	// Persist the arena image and reload it — recovery rebuilds the DRAM
	// inner nodes from the SCM leaf list.
	dir, err := os.MkdirTemp("", "fptree-quickstart")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	img := filepath.Join(dir, "arena.img")
	if err := tree.Save(img); err != nil {
		log.Fatal(err)
	}
	reloaded, err := fptree.Load(img, fptree.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reloaded tree holds %d keys; t=42 -> ", reloaded.Len())
	v, _ = reloaded.Find(42)
	fmt.Println(v)

	// SCM activity of this session.
	st := tree.Pool().Stats().Snapshot()
	fmt.Printf("SCM stats: %d flushes, %d allocations\n", st.Flushes, st.Allocs)
}
