// KV cache: run the memcached-like server of Section 6.4 in-process with the
// concurrent FPTree as its storage engine, then drive it through the
// memcached text protocol from multiple client connections.
package main

import (
	"fmt"
	"log"

	"fptree/internal/kvserver"
	"fptree/internal/scm"
)

func main() {
	pool := scm.NewPool(256<<20, scm.LatencyConfig{})
	store, err := kvserver.NewFPTreeCStore(pool)
	if err != nil {
		log.Fatal(err)
	}
	srv, addr, err := kvserver.Serve("127.0.0.1:0", store)
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Printf("memcached-protocol server on %s backed by %s\n", addr, store.Name())

	// The mc-benchmark client: SET phase then GET phase over 8 connections.
	res, err := kvserver.RunMCBenchmark(addr, 8, 20_000, 32)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SET: %.0f ops/s\nGET: %.0f ops/s\n", res.SetOps, res.GetOps)

	// The cache contents live in (emulated) SCM: unlike vanilla memcached, a
	// restart would recover them instead of starting cold.
	st := pool.Stats().Snapshot()
	fmt.Printf("SCM activity: %d line flushes, %d allocations\n", st.Flushes, st.Allocs)
}
