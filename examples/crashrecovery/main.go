// Crash recovery: demonstrate the FPTree's any-point crash consistency by
// injecting a power failure in the middle of an insert burst (including leaf
// splits), then recovering and verifying that every acknowledged insert
// survived and no partial state is visible.
package main

import (
	"errors"
	"fmt"
	"log"

	"fptree"
	"fptree/internal/scm"
)

func main() {
	tree, err := fptree.Create(fptree.Options{PoolSize: 64 << 20, LeafCap: 8})
	if err != nil {
		log.Fatal(err)
	}

	acked := map[uint64]uint64{}
	for k := uint64(1); k <= 5_000; k++ {
		if err := tree.Insert(k, k*3); err != nil {
			log.Fatal(err)
		}
		acked[k] = k * 3
	}
	fmt.Printf("loaded %d keys\n", tree.Len())

	// Arm the fail-point: the 7th upcoming cache-line flush will "cut the
	// power" mid-operation. Run inserts until the crash fires.
	tree.Pool().FailAfterFlushes(7)
	var crashedAt uint64
	func() {
		defer func() {
			if r := recover(); r != nil {
				if err, ok := r.(error); !ok || !errors.Is(err, scm.ErrInjectedCrash) {
					panic(r)
				}
			}
		}()
		for k := uint64(100_000); ; k++ {
			crashedAt = k
			if err := tree.Insert(k, k); err != nil {
				log.Fatal(err)
			}
			acked[k] = k
		}
	}()
	delete(acked, crashedAt) // the in-flight insert was never acknowledged
	fmt.Printf("power failed during insert of key %d\n", crashedAt)

	// Discard everything that never reached the durable medium, then run
	// recovery: allocator intent replay, micro-log replay, inner rebuild.
	tree.Pool().Crash()
	if err := tree.Recover(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovered; tree holds %d keys\n", tree.Len())

	for k, v := range acked {
		got, ok := tree.Find(k)
		if !ok || got != v {
			log.Fatalf("acknowledged key %d lost or corrupt: %d,%v", k, got, ok)
		}
	}
	if v, ok := tree.Find(crashedAt); ok {
		fmt.Printf("in-flight key %d committed atomically (value %d)\n", crashedAt, v)
	} else {
		fmt.Printf("in-flight key %d rolled back cleanly\n", crashedAt)
	}
	if err := tree.CheckInvariants(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("all acknowledged writes intact; invariants hold")
}
