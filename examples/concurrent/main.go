// Concurrent: exercise the Selective Concurrency FPTree from many goroutines
// — the workload of the paper's Figure 9 — and report throughput and the
// HTM-emulation abort statistics.
package main

import (
	"fmt"
	"log"
	"runtime"
	"sync"
	"time"

	"fptree"
)

func main() {
	tree, err := fptree.CreateConcurrent(fptree.Options{PoolSize: 256 << 20})
	if err != nil {
		log.Fatal(err)
	}

	workers := runtime.NumCPU() * 2
	const perWorker = 50_000

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			base := uint64(w) * perWorker
			for i := uint64(0); i < perWorker; i++ {
				if err := tree.Insert(base+i+1, i); err != nil {
					log.Fatal(err)
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	total := workers * perWorker
	fmt.Printf("%d goroutines inserted %d keys in %v (%.2f Mops/s)\n",
		workers, total, elapsed.Round(time.Millisecond),
		float64(total)/elapsed.Seconds()/1e6)

	// Mixed readers and writers on overlapping ranges.
	start = time.Now()
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := uint64(0); i < perWorker; i++ {
				k := (uint64(w)*perWorker+i)%uint64(total) + 1
				if i%2 == 0 {
					tree.Find(k)
				} else {
					tree.Update(k, i) //nolint:errcheck
				}
			}
		}()
	}
	wg.Wait()
	fmt.Printf("mixed phase: %.2f Mops/s\n", float64(total)/time.Since(start).Seconds()/1e6)

	if tree.Len() != total {
		log.Fatalf("Len = %d, want %d", tree.Len(), total)
	}
	fmt.Printf("tree holds %d keys after concurrent load\n", tree.Len())
}
