// Example metrics demonstrates phase-scoped metric deltas with internal/obs:
// it builds an FPTree on an emulated SCM pool, registers the pool and tree
// counters in a registry, and brackets each workload phase with snapshots.
// The difference between two snapshots attributes SCM traffic and fingerprint
// behaviour to that phase alone — the same pattern fptree-bench -stats, tatp
// -stats and the memkv /metrics endpoint use.
//
// Run it with:
//
//	go run ./examples/metrics
package main

import (
	"fmt"
	"math/rand"
	"os"

	"fptree/internal/core"
	"fptree/internal/obs"
	"fptree/internal/scm"
)

const n = 100_000

func main() {
	pool := scm.NewPool(256<<20, scm.LatencyConfig{})
	tree, err := core.Create(pool, core.Config{})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	reg := obs.NewRegistry()
	pool.RegisterMetrics(reg, "scm")
	tree.RegisterMetrics(reg)

	keys := make([]uint64, 0, n)
	seen := make(map[uint64]bool, n)
	rng := rand.New(rand.NewSource(7))
	for len(keys) < n {
		k := rng.Uint64()
		if k != 0 && !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}

	// Phase 1: insert. The delta shows the write cost the paper derives
	// analytically — a handful of line flushes and fences per insert.
	before := reg.Snapshot()
	for i, k := range keys {
		if err := tree.Insert(k, uint64(i)); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	d := reg.Snapshot().Sub(before)
	fmt.Printf("insert: %d keys, %.3f flushes/op, %.3f fences/op\n",
		n, d.PerOp("scm_flushes_total", n), d.PerOp("scm_fences_total", n))

	// Phase 2: point lookups. Reads flush nothing; the interesting numbers
	// are the fingerprint false-positive rate (~1/256 for uniform keys) and
	// the resulting ~1 full key probe per leaf search.
	before = reg.Snapshot()
	for _, k := range keys {
		if _, ok := tree.Find(k); !ok {
			fmt.Fprintf(os.Stderr, "lost key %d\n", k)
			os.Exit(1)
		}
	}
	d = reg.Snapshot().Sub(before)
	fmt.Printf("find:   %d keys, %.3f flushes/op, FP-rate %.4f, %.3f key probes/search\n",
		n, d.PerOp("scm_flushes_total", n),
		d.Ratio("fptree_fingerprint_false_positives_total", "fptree_fingerprint_compares_total"),
		d.Ratio("fptree_key_probes_total", "fptree_searches_total"))
}
