// Command mcbench is the mc-benchmark equivalent used in Section 6.4: it
// issues SET requests followed by GET requests against a memcached-protocol
// server from many client connections and reports throughput, completed op
// counts and client-side latency percentiles. With -server-stats it also
// fetches the server's `stats` output before and after the run and prints the
// per-run delta of every numeric stat, plus the derived SCM cost per op
// (flushes/op, fences/op) the paper argues about analytically.
//
// With -sweep the run is repeated once per client count in a comma-separated
// list, printing one table row per count — the shape of the paper's
// throughput-vs-clients scaling figures. With -shard-dist the per-shard key
// distribution (`stats shards`) is printed after the run, exposing hot shards
// on a sharded server.
//
// Usage:
//
//	mcbench -addr 127.0.0.1:11211 -clients 50 -ops 100000 -server-stats
//	mcbench -addr 127.0.0.1:11211 -sweep 1,8,64 -ops 100000 -shard-dist
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"fptree/internal/kvserver"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:11211", "server address")
		clients     = flag.Int("clients", 50, "concurrent connections")
		ops         = flag.Int("ops", 100000, "operations per phase")
		size        = flag.Int("size", 32, "value size in bytes")
		timeout     = flag.Duration("timeout", 5*time.Second, "per-request I/O deadline (0 = none)")
		serverStats = flag.Bool("server-stats", false, "print the per-run delta of the server's `stats` counters after the run")
		sweep       = flag.String("sweep", "", "comma-separated client counts; run the benchmark once per count and print a scaling table (overrides -clients)")
		shardDist   = flag.Bool("shard-dist", false, "print the per-shard key distribution (`stats shards`) after the run; requires a sharded server")
	)
	flag.Parse()

	if *sweep != "" {
		runSweep(*addr, *sweep, *ops, *size, *timeout)
	} else {
		runOnce(*addr, *clients, *ops, *size, *timeout, *serverStats)
	}

	if *shardDist {
		printShardDist(*addr, *timeout)
	}
}

func runOnce(addr string, clients, ops, size int, timeout time.Duration, serverStats bool) {
	var before map[string]string
	if serverStats {
		var err error
		before, err = kvserver.FetchServerStats(addr, timeout)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	res, err := kvserver.RunMCBenchmarkTimeout(addr, clients, ops, size, timeout)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	report := func(name string, rate float64, done uint64, lat kvserver.HistogramSnapshot) {
		fmt.Printf("%s: %.0f ops/s (%d completed)  p50=%v p95=%v p99=%v max=%v\n",
			name, rate, done, lat.P50, lat.P95, lat.P99, lat.Max)
	}
	report("SET", res.SetOps, res.SetCompleted, res.SetLatency)
	report("GET", res.GetOps, res.GetCompleted, res.GetLatency)

	if serverStats {
		after, err := kvserver.FetchServerStats(addr, timeout)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		delta := kvserver.StatsDelta(before, after)
		fmt.Println("server stats delta (this run):")
		keys := make([]string, 0, len(delta))
		for k := range delta {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Printf("  %-24s %.0f\n", k, delta[k])
		}
		if total := res.SetCompleted + res.GetCompleted; total > 0 {
			fmt.Printf("derived: %.3f flushes/op, %.3f fences/op over %d completed ops\n",
				delta["scm_flushes"]/float64(total),
				delta["scm_fences"]/float64(total), total)
		}
	}
}

// runSweep repeats the benchmark for each client count in spec ("1,8,64")
// and prints one scaling-table row per count.
func runSweep(addr, spec string, ops, size int, timeout time.Duration) {
	var counts []int
	for _, f := range strings.Split(spec, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			fmt.Fprintf(os.Stderr, "mcbench: bad -sweep entry %q\n", f)
			os.Exit(2)
		}
		counts = append(counts, n)
	}
	fmt.Printf("%8s %14s %14s %12s %12s\n", "clients", "set_ops/s", "get_ops/s", "set_p99", "get_p99")
	for _, n := range counts {
		res, err := kvserver.RunMCBenchmarkTimeout(addr, n, ops, size, timeout)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("%8d %14.0f %14.0f %12v %12v\n",
			n, res.SetOps, res.GetOps, res.SetLatency.P99, res.GetLatency.P99)
	}
}

// printShardDist fetches `stats shards` and renders the key distribution
// across the fleet, flagging imbalance relative to a perfect spread.
func printShardDist(addr string, timeout time.Duration) {
	stats, err := kvserver.FetchShardStats(addr, timeout)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	lens := kvserver.ShardLens(stats)
	if lens == nil {
		fmt.Fprintln(os.Stderr, "mcbench: server reported no shard statistics")
		os.Exit(1)
	}
	var total uint64
	for _, l := range lens {
		total += l
	}
	fmt.Printf("shard distribution (%d keys over %d shards):\n", total, len(lens))
	for i, l := range lens {
		share := 0.0
		if total > 0 {
			share = 100 * float64(l) / float64(total)
		}
		fmt.Printf("  shard%-3d %10d keys  %5.1f%%  (writes %s, flushes %s)\n",
			i, l, share,
			stats[fmt.Sprintf("shard%d_scm_writes", i)],
			stats[fmt.Sprintf("shard%d_scm_flushes", i)])
	}
}
