// Command mcbench is the mc-benchmark equivalent used in Section 6.4: it
// issues SET requests followed by GET requests against a memcached-protocol
// server from many client connections and reports throughput, completed op
// counts and client-side latency percentiles. With -server-stats it also
// fetches the server's `stats` output before and after the run and prints the
// per-run delta of every numeric stat, plus the derived SCM cost per op
// (flushes/op, fences/op) the paper argues about analytically.
//
// Usage:
//
//	mcbench -addr 127.0.0.1:11211 -clients 50 -ops 100000 -server-stats
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"fptree/internal/kvserver"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:11211", "server address")
		clients     = flag.Int("clients", 50, "concurrent connections")
		ops         = flag.Int("ops", 100000, "operations per phase")
		size        = flag.Int("size", 32, "value size in bytes")
		timeout     = flag.Duration("timeout", 5*time.Second, "per-request I/O deadline (0 = none)")
		serverStats = flag.Bool("server-stats", false, "print the per-run delta of the server's `stats` counters after the run")
	)
	flag.Parse()

	var before map[string]string
	if *serverStats {
		var err error
		before, err = kvserver.FetchServerStats(*addr, *timeout)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	res, err := kvserver.RunMCBenchmarkTimeout(*addr, *clients, *ops, *size, *timeout)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	report := func(name string, rate float64, done uint64, lat kvserver.HistogramSnapshot) {
		fmt.Printf("%s: %.0f ops/s (%d completed)  p50=%v p95=%v p99=%v max=%v\n",
			name, rate, done, lat.P50, lat.P95, lat.P99, lat.Max)
	}
	report("SET", res.SetOps, res.SetCompleted, res.SetLatency)
	report("GET", res.GetOps, res.GetCompleted, res.GetLatency)

	if *serverStats {
		after, err := kvserver.FetchServerStats(*addr, *timeout)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		delta := kvserver.StatsDelta(before, after)
		fmt.Println("server stats delta (this run):")
		keys := make([]string, 0, len(delta))
		for k := range delta {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Printf("  %-24s %.0f\n", k, delta[k])
		}
		if total := res.SetCompleted + res.GetCompleted; total > 0 {
			fmt.Printf("derived: %.3f flushes/op, %.3f fences/op over %d completed ops\n",
				delta["scm_flushes"]/float64(total),
				delta["scm_fences"]/float64(total), total)
		}
	}
}
