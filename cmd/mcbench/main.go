// Command mcbench is the mc-benchmark equivalent used in Section 6.4: it
// issues SET requests followed by GET requests against a memcached-protocol
// server from many client connections and reports throughput.
//
// Usage:
//
//	mcbench -addr 127.0.0.1:11211 -clients 50 -ops 100000
package main

import (
	"flag"
	"fmt"
	"os"

	"fptree/internal/kvserver"
)

func main() {
	var (
		addr    = flag.String("addr", "127.0.0.1:11211", "server address")
		clients = flag.Int("clients", 50, "concurrent connections")
		ops     = flag.Int("ops", 100000, "operations per phase")
		size    = flag.Int("size", 32, "value size in bytes")
	)
	flag.Parse()

	res, err := kvserver.RunMCBenchmark(*addr, *clients, *ops, *size)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("SET: %.0f ops/s\nGET: %.0f ops/s\n", res.SetOps, res.GetOps)
}
