// Command memkv runs the memcached-like key-value server of Section 6.4 with
// a selectable storage engine. Point any memcached text-protocol client (or
// cmd/mcbench) at it.
//
// Usage:
//
//	memkv -addr 127.0.0.1:11211 -store fptreec -latency 85
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"fptree/internal/kvserver"
	"fptree/internal/scm"
)

func main() {
	var (
		addr    = flag.String("addr", "127.0.0.1:11211", "listen address")
		store   = flag.String("store", "fptreec", "fptreec | fptree | ptree | nvtreec | hashmap")
		latency = flag.Int("latency", 0, "emulated SCM latency in ns (0 = off)")
		poolMB  = flag.Int("pool", 512, "SCM arena size in MiB")
	)
	flag.Parse()

	lat := scm.LatencyConfig{}
	if *latency > 0 {
		lat = scm.LatencyConfig{
			Mode:         scm.LatencySpin,
			ReadLatency:  time.Duration(*latency) * time.Nanosecond,
			WriteLatency: time.Duration(*latency) * time.Nanosecond,
		}
	}
	pool := scm.NewPool(int64(*poolMB)<<20, lat)

	var (
		st  kvserver.Store
		err error
	)
	switch *store {
	case "fptreec":
		st, err = kvserver.NewFPTreeCStore(pool)
	case "fptree":
		st, err = kvserver.NewFPTreeStore(pool)
	case "ptree":
		st, err = kvserver.NewPTreeStore(pool)
	case "nvtreec":
		st, err = kvserver.NewNVTreeCStore(pool)
	case "hashmap":
		st = kvserver.NewHashMapStore()
	default:
		fmt.Fprintf(os.Stderr, "unknown store %q\n", *store)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	srv, bound, err := kvserver.Serve(*addr, st)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("memkv: %s store listening on %s (SCM latency %dns)\n", st.Name(), bound, *latency)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	srv.Close()
}
