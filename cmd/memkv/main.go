// Command memkv runs the memcached-like key-value server of Section 6.4 with
// a selectable storage engine. Point any memcached text-protocol client (or
// cmd/mcbench) at it. It speaks get/gets/set (with noreply), delete, version,
// stats and quit.
//
// Usage:
//
//	memkv -addr 127.0.0.1:11211 -store fptreec -latency 85 -max-conns 1024
//
// With -metrics-addr the server also exposes an observability HTTP endpoint:
// /metrics (Prometheus text exposition of the server, tree, HTM and SCM
// counters), /debug/vars (expvar), /debug/pprof/ and /debug/events (recent
// server events).
//
// On SIGINT/SIGTERM the server drains in-flight commands (bounded by -drain)
// and, unless -stats=false, dumps the final stats — per-op counters, latency
// histogram summaries and the SCM emulator counters — to stdout.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"fptree/internal/kvserver"
	"fptree/internal/obs"
	"fptree/internal/scm"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:11211", "listen address")
		store        = flag.String("store", "fptreec", "fptreec | fptree | ptree | nvtreec | hashmap")
		latency      = flag.Int("latency", 0, "emulated SCM latency in ns (0 = off)")
		poolMB       = flag.Int("pool", 512, "SCM arena size in MiB")
		readTimeout  = flag.Duration("read-timeout", 0, "per-command read deadline (0 = none)")
		writeTimeout = flag.Duration("write-timeout", 0, "per-response write deadline (0 = none)")
		maxConns     = flag.Int("max-conns", 0, "max simultaneous connections (0 = unlimited)")
		drain        = flag.Duration("drain", time.Second, "shutdown grace for in-flight commands")
		dumpStats    = flag.Bool("stats", true, "dump server stats on shutdown")
		metricsAddr  = flag.String("metrics-addr", "", "observability HTTP endpoint (/metrics, /debug/pprof/, /debug/vars, /debug/events); empty = off")
	)
	flag.Parse()

	lat := scm.LatencyConfig{}
	if *latency > 0 {
		lat = scm.LatencyConfig{
			Mode:         scm.LatencySpin,
			ReadLatency:  time.Duration(*latency) * time.Nanosecond,
			WriteLatency: time.Duration(*latency) * time.Nanosecond,
		}
	}
	pool := scm.NewPool(int64(*poolMB)<<20, lat)

	var (
		st  kvserver.Store
		err error
	)
	switch *store {
	case "fptreec":
		st, err = kvserver.NewFPTreeCStore(pool)
	case "fptree":
		st, err = kvserver.NewFPTreeStore(pool)
	case "ptree":
		st, err = kvserver.NewPTreeStore(pool)
	case "nvtreec":
		st, err = kvserver.NewNVTreeCStore(pool)
	case "hashmap":
		st = kvserver.NewHashMapStore()
	default:
		fmt.Fprintf(os.Stderr, "unknown store %q\n", *store)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	var ring *obs.EventRing
	if *metricsAddr != "" {
		ring = obs.NewEventRing(obs.DefaultEventRingSize)
	}
	cfg := kvserver.Config{
		ReadTimeout:  *readTimeout,
		WriteTimeout: *writeTimeout,
		MaxConns:     *maxConns,
		DrainTimeout: *drain,
		Pool:         pool,
		Events:       ring,
	}
	srv, bound, err := kvserver.ServeConfig(*addr, st, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("memkv: %s store listening on %s (SCM latency %dns)\n", st.Name(), bound, *latency)

	if *metricsAddr != "" {
		reg := obs.NewRegistry()
		srv.RegisterMetrics(reg)
		metricsSrv, metricsBound, err := obs.Serve(*metricsAddr, reg, ring)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			srv.Close()
			os.Exit(1)
		}
		defer metricsSrv.Close()
		fmt.Printf("memkv: metrics on http://%s/metrics\n", metricsBound)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("memkv: shutting down")
	srv.Close()
	if *dumpStats {
		srv.DumpStats(os.Stdout)
	}
}
