// Command memkv runs the memcached-like key-value server of Section 6.4 with
// a selectable storage engine. Point any memcached text-protocol client (or
// cmd/mcbench) at it. It speaks get/gets/set (with noreply), delete, version,
// stats and quit.
//
// Usage:
//
//	memkv -addr 127.0.0.1:11211 -store fptreec -latency 85 -max-conns 1024
//
// With -data the SCM arena is a real file: the store survives process death,
// including kill -9. On start the file is created if missing, otherwise the
// tree in it is recovered (crash recovery runs unconditionally — it does not
// depend on the previous process having shut down cleanly). On SIGINT/SIGTERM
// shutdown the arena is synced and marked cleanly closed. Without -data the
// arena lives in memory and all data is lost on exit. The hashmap store has
// no persistent representation and rejects -data.
//
// With -shards N (N > 1) the keyspace is hash-partitioned over N independent
// shard trees behind a router: each shard owns its own SCM arena — with -data
// the files are named <data>.shard0 … <data>.shard(N-1) — its own allocator
// and its own concurrency domain, so clients on different shards share no
// synchronization. The shard count is part of the on-disk layout: reopen a
// sharded data path with the same -shards value (a narrower reopen fails
// loudly). Recovery after a crash runs all shards in parallel. `stats`
// reports fleet-wide totals; `stats shards` breaks them out per shard.
//
// With -metrics-addr the server also exposes an observability HTTP endpoint:
// /metrics (Prometheus text exposition of the server, tree, HTM and SCM
// counters, plus windowed window_* contention gauges; sharded servers add
// per-shard series labeled {shard="i"}), /debug/vars (expvar), /debug/pprof/,
// /debug/events (recent server events) and — with -trace-sample N —
// /debug/traces (sampled per-operation spans with phase/flush/abort
// attribution). -slow-op D counts and event-logs every request slower than D
// regardless of sampling.
//
// On SIGINT/SIGTERM the server drains in-flight commands (bounded by -drain)
// and, unless -stats=false, dumps the final stats — per-op counters, latency
// histogram summaries and the SCM emulator counters — to stdout.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"fptree/internal/core"
	"fptree/internal/htm"
	"fptree/internal/kvserver"
	"fptree/internal/obs"
	"fptree/internal/obs/trace"
	"fptree/internal/scm"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:11211", "listen address")
		store        = flag.String("store", "fptreec", "fptreec | fptree | ptree | nvtreec | hashmap")
		data         = flag.String("data", "", "arena file path; empty = in-memory arena (state lost on exit)")
		shards       = flag.Int("shards", 1, "hash-partition the keyspace over N independent shard trees, one arena per shard (<data>.shard<i>); must match the on-disk layout on reopen")
		latency      = flag.Int("latency", 0, "emulated SCM latency in ns (0 = off)")
		latencyMode  = flag.String("latency-mode", "spin", "how latency is charged: spin | sleep")
		poolMB       = flag.Int("pool", 512, "total SCM arena size in MiB, split evenly across shards (ignored when -data names an existing arena)")
		syncEvery    = flag.Duration("sync", 0, "periodic arena sync interval for power-fail durability (0 = sync only on shutdown)")
		recWorkers   = flag.Int("recovery-workers", 0, "parallel recovery leaf-scan workers per shard (0 = sequential)")
		readTimeout  = flag.Duration("read-timeout", 0, "per-command read deadline (0 = none)")
		writeTimeout = flag.Duration("write-timeout", 0, "per-response write deadline (0 = none)")
		maxConns     = flag.Int("max-conns", 0, "max simultaneous connections (0 = unlimited)")
		drain        = flag.Duration("drain", time.Second, "shutdown grace for in-flight commands")
		dumpStats    = flag.Bool("stats", true, "dump server stats on shutdown")
		metricsAddr  = flag.String("metrics-addr", "", "observability HTTP endpoint (/metrics, /debug/pprof/, /debug/vars, /debug/events, /debug/traces); empty = off")
		traceSample  = flag.Int("trace-sample", 0, "trace 1 in N requests with phase/flush/abort attribution on /debug/traces (0 = tracing off)")
		slowOp       = flag.Duration("slow-op", 0, "count + event-log any request slower than this, even with tracing off (0 = off)")
		windowEvery  = flag.Duration("window", time.Second, "snapshot interval for the windowed window_* gauges")
		adaptive     = flag.Bool("adaptive", false, "adaptive HTM concurrency: per-shard controllers track the live abort ratio, adjusting retry budgets and fallback entry (concurrent tree stores only)")
		adaptFloor   = flag.Int("adaptive-floor", 0, "minimum optimistic retry budget for -adaptive (0 = default)")
		adaptCeiling = flag.Int("adaptive-ceiling", 0, "maximum optimistic retry budget for -adaptive (0 = default)")
	)
	flag.Parse()

	lat := scm.LatencyConfig{}
	if *latency > 0 {
		lat = scm.LatencyConfig{
			ReadLatency:  time.Duration(*latency) * time.Nanosecond,
			WriteLatency: time.Duration(*latency) * time.Nanosecond,
		}
		switch *latencyMode {
		case "spin":
			lat.Mode = scm.LatencySpin
		case "sleep":
			lat.Mode = scm.LatencySleep
		default:
			fmt.Fprintf(os.Stderr, "unknown -latency-mode %q (want spin or sleep)\n", *latencyMode)
			os.Exit(2)
		}
	}

	if *store == "hashmap" && *data != "" {
		fmt.Fprintln(os.Stderr, "memkv: the hashmap store is transient and cannot use -data")
		os.Exit(2)
	}
	if *shards < 1 {
		fmt.Fprintf(os.Stderr, "memkv: -shards %d < 1\n", *shards)
		os.Exit(2)
	}

	var (
		st    kvserver.Store
		pools []*scm.Pool
		err   error
	)
	if *shards == 1 {
		st, pools, err = openSingle(*store, *data, int64(*poolMB)<<20, lat, *recWorkers)
	} else {
		st, pools, err = openSharded(*store, *data, *shards, int64(*poolMB)<<20, lat, *recWorkers)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if *adaptive {
		acfg := htm.AdaptiveConfig{Floor: *adaptFloor, Ceiling: *adaptCeiling}
		ctrls := kvserver.AttachAdaptive(st, acfg)
		if len(ctrls) == 0 {
			fmt.Fprintf(os.Stderr, "memkv: -adaptive needs a concurrent tree store (have %q)\n", *store)
			os.Exit(2)
		}
		cfg := ctrls[0].Config()
		fmt.Printf("memkv: adaptive concurrency on %d shard(s), retry budget [%d,%d]\n",
			len(ctrls), cfg.Floor, cfg.Ceiling)
	}

	var ring *obs.EventRing
	if *metricsAddr != "" {
		ring = obs.NewEventRing(obs.DefaultEventRingSize)
	}
	var tracer *trace.Tracer
	if *traceSample > 0 {
		tcfg := trace.Config{
			SampleEvery: *traceSample,
			SlowOp:      *slowOp,
			Events:      ring,
		}
		// Flush/fence attribution needs one Stats behind all sampled ops, so
		// it is only wired for the single-arena layout; sharded spans carry
		// phase timings without persistence-cost attribution.
		if len(pools) == 1 && pools[0] != nil {
			tcfg.Costs = pools[0].Stats()
		}
		tracer = trace.New(tcfg)
	}
	cfg := kvserver.Config{
		ReadTimeout:     *readTimeout,
		WriteTimeout:    *writeTimeout,
		MaxConns:        *maxConns,
		DrainTimeout:    *drain,
		Pools:           pools,
		Events:          ring,
		Tracer:          tracer,
		SlowOpThreshold: *slowOp,
	}
	srv, bound, err := kvserver.ServeConfig(*addr, st, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("memkv: %s store listening on %s (SCM latency %dns)\n", st.Name(), bound, *latency)

	if *metricsAddr != "" {
		reg := obs.NewRegistry()
		srv.RegisterMetrics(reg)

		// Windowed contention telemetry: a ticker snapshots the registry and
		// the window derives trailing-30s rates/ratios as window_* gauges, so
		// a scrape shows current behaviour rather than since-boot averages.
		win := obs.NewWindow(reg, obs.DefaultWindowSlots)
		win.ExportRatio(reg, "window_htm_abort_ratio",
			"HTM/OCC aborts per tree search over the trailing 30s",
			"htm_aborts_total", "fptree_searches_total", 30*time.Second)
		if len(pools) > 0 {
			win.ExportRatio(reg, "window_flushes_per_op",
				"cache-line flushes per tree search over the trailing 30s",
				"scm_flushes_total", "fptree_searches_total", 30*time.Second)
		}
		if ss, ok := st.(*kvserver.ShardedStore); ok && *store != "hashmap" {
			// Per-shard contention ratios over the labeled series the router
			// registers, so a hot shard is visible as its own gauge.
			for i := 0; i < ss.NumShards(); i++ {
				lbl := obs.ShardLabel(i)
				num := obs.Series("htm_aborts_total", lbl)
				den := obs.Series("fptree_searches_total", lbl)
				reg.GaugeFuncL("window_htm_abort_ratio", lbl,
					"HTM/OCC aborts per tree search over the trailing 30s",
					func() float64 { return win.Ratio(num, den, 30*time.Second) })
			}
		}
		var extra map[string]http.Handler
		if tracer != nil {
			for p := trace.Phase(0); p < trace.NumPhases; p++ {
				name := "trace_phase_" + p.String() + "_ns"
				win.TrackHistogram(name, tracer.PhaseHistogram(p))
				win.ExportP99(reg, "window_"+name+"_p99",
					"windowed p99 latency of the "+p.String()+" phase in ns",
					name, 30*time.Second)
			}
			extra = map[string]http.Handler{"/debug/traces": trace.Handler(tracer)}
		}
		stopWin := make(chan struct{})
		defer close(stopWin)
		go win.Run(*windowEvery, stopWin)

		metricsSrv, metricsBound, err := obs.ServeWith(*metricsAddr, reg, ring, extra)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			srv.Close()
			os.Exit(1)
		}
		defer metricsSrv.Close()
		fmt.Printf("memkv: metrics on http://%s/metrics\n", metricsBound)
		if tracer != nil {
			fmt.Printf("memkv: tracing 1 in %d requests on http://%s/debug/traces\n",
				tracer.SampleEvery(), metricsBound)
		}
	}

	fileBacked := false
	for _, p := range pools {
		if p != nil && p.FileBacked() {
			fileBacked = true
		}
	}
	stopSync := make(chan struct{})
	if *syncEvery > 0 && fileBacked {
		go func() {
			t := time.NewTicker(*syncEvery)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					// One fan-out sync covers every shard arena.
					if err := scm.SyncPools(pools); err != nil {
						fmt.Fprintf(os.Stderr, "memkv: arena sync: %v\n", err)
					}
				case <-stopSync:
					return
				}
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("memkv: shutting down")
	srv.Close()
	close(stopSync)
	if fileBacked {
		if err := scm.ClosePools(pools); err != nil {
			fmt.Fprintf(os.Stderr, "memkv: closing arena: %v\n", err)
		} else if len(pools) == 1 {
			fmt.Printf("memkv: arena %s closed cleanly\n", *data)
		} else {
			fmt.Printf("memkv: %d shard arenas of %s closed cleanly\n", len(pools), *data)
		}
	}
	if *dumpStats {
		srv.DumpStats(os.Stdout)
	}
}

// newStore constructs a fresh store of the given kind over pool (nil for
// hashmap).
func newStore(kind string, pool *scm.Pool) (kvserver.Store, error) {
	switch kind {
	case "fptreec":
		return kvserver.NewFPTreeCStore(pool)
	case "fptree":
		return kvserver.NewFPTreeStore(pool)
	case "ptree":
		return kvserver.NewPTreeStore(pool)
	case "nvtreec":
		return kvserver.NewNVTreeCStore(pool)
	case "hashmap":
		return kvserver.NewHashMapStore(), nil
	default:
		return nil, fmt.Errorf("unknown store %q", kind)
	}
}

// openStore recovers a store of the given kind from an arena that already
// holds a tree.
func openStore(kind string, pool *scm.Pool, workers int) (kvserver.Store, error) {
	switch kind {
	case "fptreec":
		return kvserver.OpenFPTreeCStore(pool, workers)
	case "fptree":
		return kvserver.OpenFPTreeStore(pool, workers)
	case "ptree":
		return kvserver.OpenPTreeStore(pool, workers)
	case "nvtreec":
		return kvserver.OpenNVTreeCStore(pool)
	default:
		return nil, fmt.Errorf("unknown store %q", kind)
	}
}

// openSingle is the classic one-tree layout: one arena (file-backed with
// -data), one store.
func openSingle(kind, data string, poolBytes int64, lat scm.LatencyConfig, workers int) (kvserver.Store, []*scm.Pool, error) {
	var (
		pool      *scm.Pool
		recovered bool
		err       error
	)
	if data != "" {
		pool, recovered, err = scm.OpenFile(data, poolBytes, lat)
		if err != nil {
			return nil, nil, err
		}
	} else if kind != "hashmap" {
		pool = scm.NewPool(poolBytes, lat)
	}

	var st kvserver.Store
	if recovered && core.HasTree(pool) {
		st, err = openStore(kind, pool, workers)
	} else {
		st, err = newStore(kind, pool)
	}
	if err != nil {
		return nil, nil, err
	}

	if recovered {
		shutdown := "crash"
		if pool.WasCleanShutdown() {
			shutdown = "clean"
		}
		if c, ok := st.(kvserver.Checker); ok {
			if err := c.CheckInvariants(); err != nil {
				return nil, nil, fmt.Errorf("memkv: recovered tree failed invariant check: %w", err)
			}
			fmt.Printf("memkv: recovered %d keys from %s (%s shutdown, invariants ok)\n",
				c.Len(), data, shutdown)
		}
	} else if data != "" {
		fmt.Printf("memkv: created arena %s\n", data)
	}
	if pool == nil {
		return st, nil, nil
	}
	return st, []*scm.Pool{pool}, nil
}

// openSharded builds the hash-partitioned fleet: n arenas (files
// <data>.shard<i> with -data), one store per arena, all shard recoveries
// running in parallel, behind a ShardedStore router.
func openSharded(kind, data string, n int, poolBytes int64, lat scm.LatencyConfig, workers int) (kvserver.Store, []*scm.Pool, error) {
	capEach := poolBytes / int64(n)
	var (
		pools     []*scm.Pool
		recovered []bool
		err       error
	)
	switch {
	case data != "":
		pools, recovered, err = scm.OpenFileShards(data, n, capEach, lat)
		if err != nil {
			return nil, nil, err
		}
	case kind != "hashmap":
		pools = make([]*scm.Pool, n)
		for i := range pools {
			pools[i] = scm.NewPool(capEach, lat)
		}
		recovered = make([]bool, n)
	default:
		recovered = make([]bool, n)
	}

	stores, err := kvserver.BuildShardStores(n, func(i int) (kvserver.Store, error) {
		if recovered[i] && core.HasTree(pools[i]) {
			return openStore(kind, pools[i], workers)
		}
		var p *scm.Pool
		if pools != nil {
			p = pools[i]
		}
		return newStore(kind, p)
	})
	if err != nil {
		scm.ClosePools(pools) //nolint:errcheck — surfacing the build error
		return nil, nil, err
	}
	router, err := kvserver.NewShardedStore(stores, pools)
	if err != nil {
		return nil, nil, err
	}

	anyRecovered := false
	shutdown := "clean"
	for i, r := range recovered {
		if !r {
			continue
		}
		anyRecovered = true
		if !pools[i].WasCleanShutdown() {
			shutdown = "crash"
		}
	}
	if anyRecovered {
		if err := router.CheckInvariants(); err != nil {
			return nil, nil, fmt.Errorf("memkv: recovered tree failed invariant check: %w", err)
		}
		for i, r := range recovered {
			if !r {
				continue
			}
			if c, ok := stores[i].(kvserver.Checker); ok {
				fmt.Printf("memkv: shard %d/%d recovered %d keys from %s\n",
					i, n, c.Len(), scm.ShardPath(data, i))
			}
		}
		fmt.Printf("memkv: recovered %d keys from %s across %d shards (%s shutdown, invariants ok)\n",
			router.Len(), data, n, shutdown)
	} else if data != "" {
		fmt.Printf("memkv: created arena %s across %d shards\n", data, n)
	}
	return router, pools, nil
}
