// Command memkv runs the memcached-like key-value server of Section 6.4 with
// a selectable storage engine. Point any memcached text-protocol client (or
// cmd/mcbench) at it. It speaks get/gets/set (with noreply), delete, version,
// stats and quit.
//
// Usage:
//
//	memkv -addr 127.0.0.1:11211 -store fptreec -latency 85 -max-conns 1024
//
// With -data the SCM arena is a real file: the store survives process death,
// including kill -9. On start the file is created if missing, otherwise the
// tree in it is recovered (crash recovery runs unconditionally — it does not
// depend on the previous process having shut down cleanly). On SIGINT/SIGTERM
// shutdown the arena is synced and marked cleanly closed. Without -data the
// arena lives in memory and all data is lost on exit. The hashmap store has
// no persistent representation and rejects -data.
//
// With -metrics-addr the server also exposes an observability HTTP endpoint:
// /metrics (Prometheus text exposition of the server, tree, HTM and SCM
// counters, plus windowed window_* contention gauges), /debug/vars (expvar),
// /debug/pprof/, /debug/events (recent server events) and — with
// -trace-sample N — /debug/traces (sampled per-operation spans with
// phase/flush/abort attribution). -slow-op D counts and event-logs every
// request slower than D regardless of sampling.
//
// On SIGINT/SIGTERM the server drains in-flight commands (bounded by -drain)
// and, unless -stats=false, dumps the final stats — per-op counters, latency
// histogram summaries and the SCM emulator counters — to stdout.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"fptree/internal/core"
	"fptree/internal/kvserver"
	"fptree/internal/obs"
	"fptree/internal/obs/trace"
	"fptree/internal/scm"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:11211", "listen address")
		store        = flag.String("store", "fptreec", "fptreec | fptree | ptree | nvtreec | hashmap")
		data         = flag.String("data", "", "arena file path; empty = in-memory arena (state lost on exit)")
		latency      = flag.Int("latency", 0, "emulated SCM latency in ns (0 = off)")
		latencyMode  = flag.String("latency-mode", "spin", "how latency is charged: spin | sleep")
		poolMB       = flag.Int("pool", 512, "SCM arena size in MiB (ignored when -data names an existing arena)")
		syncEvery    = flag.Duration("sync", 0, "periodic arena sync interval for power-fail durability (0 = sync only on shutdown)")
		recWorkers   = flag.Int("recovery-workers", 0, "parallel recovery leaf-scan workers (0 = sequential)")
		readTimeout  = flag.Duration("read-timeout", 0, "per-command read deadline (0 = none)")
		writeTimeout = flag.Duration("write-timeout", 0, "per-response write deadline (0 = none)")
		maxConns     = flag.Int("max-conns", 0, "max simultaneous connections (0 = unlimited)")
		drain        = flag.Duration("drain", time.Second, "shutdown grace for in-flight commands")
		dumpStats    = flag.Bool("stats", true, "dump server stats on shutdown")
		metricsAddr  = flag.String("metrics-addr", "", "observability HTTP endpoint (/metrics, /debug/pprof/, /debug/vars, /debug/events, /debug/traces); empty = off")
		traceSample  = flag.Int("trace-sample", 0, "trace 1 in N requests with phase/flush/abort attribution on /debug/traces (0 = tracing off)")
		slowOp       = flag.Duration("slow-op", 0, "count + event-log any request slower than this, even with tracing off (0 = off)")
		windowEvery  = flag.Duration("window", time.Second, "snapshot interval for the windowed window_* gauges")
	)
	flag.Parse()

	lat := scm.LatencyConfig{}
	if *latency > 0 {
		lat = scm.LatencyConfig{
			ReadLatency:  time.Duration(*latency) * time.Nanosecond,
			WriteLatency: time.Duration(*latency) * time.Nanosecond,
		}
		switch *latencyMode {
		case "spin":
			lat.Mode = scm.LatencySpin
		case "sleep":
			lat.Mode = scm.LatencySleep
		default:
			fmt.Fprintf(os.Stderr, "unknown -latency-mode %q (want spin or sleep)\n", *latencyMode)
			os.Exit(2)
		}
	}

	if *store == "hashmap" && *data != "" {
		fmt.Fprintln(os.Stderr, "memkv: the hashmap store is transient and cannot use -data")
		os.Exit(2)
	}

	var (
		pool      *scm.Pool
		recovered bool
		err       error
	)
	if *data != "" {
		pool, recovered, err = scm.OpenFile(*data, int64(*poolMB)<<20, lat)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	} else if *store != "hashmap" {
		pool = scm.NewPool(int64(*poolMB)<<20, lat)
	}

	var st kvserver.Store
	if recovered && core.HasTree(pool) {
		switch *store {
		case "fptreec":
			st, err = kvserver.OpenFPTreeCStore(pool, *recWorkers)
		case "fptree":
			st, err = kvserver.OpenFPTreeStore(pool, *recWorkers)
		case "ptree":
			st, err = kvserver.OpenPTreeStore(pool, *recWorkers)
		case "nvtreec":
			st, err = kvserver.OpenNVTreeCStore(pool)
		default:
			fmt.Fprintf(os.Stderr, "unknown store %q\n", *store)
			os.Exit(2)
		}
	} else {
		switch *store {
		case "fptreec":
			st, err = kvserver.NewFPTreeCStore(pool)
		case "fptree":
			st, err = kvserver.NewFPTreeStore(pool)
		case "ptree":
			st, err = kvserver.NewPTreeStore(pool)
		case "nvtreec":
			st, err = kvserver.NewNVTreeCStore(pool)
		case "hashmap":
			st = kvserver.NewHashMapStore()
		default:
			fmt.Fprintf(os.Stderr, "unknown store %q\n", *store)
			os.Exit(2)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if recovered {
		shutdown := "crash"
		if pool.WasCleanShutdown() {
			shutdown = "clean"
		}
		if c, ok := st.(kvserver.Checker); ok {
			if err := c.CheckInvariants(); err != nil {
				fmt.Fprintf(os.Stderr, "memkv: recovered tree failed invariant check: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("memkv: recovered %d keys from %s (%s shutdown, invariants ok)\n",
				c.Len(), *data, shutdown)
		}
	} else if *data != "" {
		fmt.Printf("memkv: created arena %s\n", *data)
	}

	var ring *obs.EventRing
	if *metricsAddr != "" {
		ring = obs.NewEventRing(obs.DefaultEventRingSize)
	}
	var tracer *trace.Tracer
	if *traceSample > 0 {
		tcfg := trace.Config{
			SampleEvery: *traceSample,
			SlowOp:      *slowOp,
			Events:      ring,
		}
		if pool != nil {
			tcfg.Costs = pool.Stats()
		}
		tracer = trace.New(tcfg)
	}
	cfg := kvserver.Config{
		ReadTimeout:     *readTimeout,
		WriteTimeout:    *writeTimeout,
		MaxConns:        *maxConns,
		DrainTimeout:    *drain,
		Pool:            pool,
		Events:          ring,
		Tracer:          tracer,
		SlowOpThreshold: *slowOp,
	}
	srv, bound, err := kvserver.ServeConfig(*addr, st, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("memkv: %s store listening on %s (SCM latency %dns)\n", st.Name(), bound, *latency)

	if *metricsAddr != "" {
		reg := obs.NewRegistry()
		srv.RegisterMetrics(reg)

		// Windowed contention telemetry: a ticker snapshots the registry and
		// the window derives trailing-30s rates/ratios as window_* gauges, so
		// a scrape shows current behaviour rather than since-boot averages.
		win := obs.NewWindow(reg, obs.DefaultWindowSlots)
		win.ExportRatio(reg, "window_htm_abort_ratio",
			"HTM/OCC aborts per tree search over the trailing 30s",
			"htm_aborts_total", "fptree_searches_total", 30*time.Second)
		if pool != nil {
			win.ExportRatio(reg, "window_flushes_per_op",
				"cache-line flushes per tree search over the trailing 30s",
				"scm_flushes_total", "fptree_searches_total", 30*time.Second)
		}
		var extra map[string]http.Handler
		if tracer != nil {
			for p := trace.Phase(0); p < trace.NumPhases; p++ {
				name := "trace_phase_" + p.String() + "_ns"
				win.TrackHistogram(name, tracer.PhaseHistogram(p))
				win.ExportP99(reg, "window_"+name+"_p99",
					"windowed p99 latency of the "+p.String()+" phase in ns",
					name, 30*time.Second)
			}
			extra = map[string]http.Handler{"/debug/traces": trace.Handler(tracer)}
		}
		stopWin := make(chan struct{})
		defer close(stopWin)
		go win.Run(*windowEvery, stopWin)

		metricsSrv, metricsBound, err := obs.ServeWith(*metricsAddr, reg, ring, extra)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			srv.Close()
			os.Exit(1)
		}
		defer metricsSrv.Close()
		fmt.Printf("memkv: metrics on http://%s/metrics\n", metricsBound)
		if tracer != nil {
			fmt.Printf("memkv: tracing 1 in %d requests on http://%s/debug/traces\n",
				tracer.SampleEvery(), metricsBound)
		}
	}

	stopSync := make(chan struct{})
	if *syncEvery > 0 && pool != nil && pool.FileBacked() {
		go func() {
			t := time.NewTicker(*syncEvery)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					if err := pool.Sync(); err != nil {
						fmt.Fprintf(os.Stderr, "memkv: arena sync: %v\n", err)
					}
				case <-stopSync:
					return
				}
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("memkv: shutting down")
	srv.Close()
	close(stopSync)
	if pool != nil && pool.FileBacked() {
		if err := pool.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "memkv: closing arena: %v\n", err)
		} else {
			fmt.Printf("memkv: arena %s closed cleanly\n", *data)
		}
	}
	if *dumpStats {
		srv.DumpStats(os.Stdout)
	}
}
