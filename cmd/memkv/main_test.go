package main

// End-to-end durability test of the real memkv binary: build it, run it with
// -data, SIGKILL it mid-workload over the live TCP connection, restart it on
// the same arena file and check that every acknowledged set survives and the
// recovery banner reports a consistent tree.

import (
	"bufio"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// buildMemkv compiles the binary under test once per test run.
func buildMemkv(t *testing.T, dir string) string {
	t.Helper()
	bin := filepath.Join(dir, "memkv-under-test")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// memkvProc is one running memkv child and its captured stdout.
type memkvProc struct {
	cmd   *exec.Cmd
	mu    sync.Mutex
	lines []string
	done  chan struct{}
}

func startMemkv(t *testing.T, bin string, args ...string) *memkvProc {
	t.Helper()
	cmd := exec.Command(bin, args...)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	p := &memkvProc{cmd: cmd, done: make(chan struct{})}
	go func() {
		defer close(p.done)
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			p.mu.Lock()
			p.lines = append(p.lines, sc.Text())
			p.mu.Unlock()
		}
	}()
	t.Cleanup(func() {
		cmd.Process.Kill() //nolint:errcheck
		cmd.Wait()         //nolint:errcheck
	})
	return p
}

// waitLine polls the captured stdout for a line containing substr and
// returns it.
func (p *memkvProc) waitLine(t *testing.T, substr string) string {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		p.mu.Lock()
		for _, l := range p.lines {
			if strings.Contains(l, substr) {
				p.mu.Unlock()
				return l
			}
		}
		p.mu.Unlock()
		time.Sleep(5 * time.Millisecond)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	t.Fatalf("memkv never printed %q; output so far:\n%s", substr, strings.Join(p.lines, "\n"))
	return ""
}

// boundAddr extracts the listen address from the startup banner.
func (p *memkvProc) boundAddr(t *testing.T) string {
	t.Helper()
	line := p.waitLine(t, "listening on")
	f := strings.Fields(line)
	for i, w := range f {
		if w == "on" && i+1 < len(f) {
			return f[i+1]
		}
	}
	t.Fatalf("cannot parse listen address from %q", line)
	return ""
}

func memkvSet(t *testing.T, rw *bufio.ReadWriter, key, val string) {
	t.Helper()
	fmt.Fprintf(rw, "set %s 0 0 %d\r\n%s\r\n", key, len(val), val)
	if err := rw.Flush(); err != nil {
		t.Fatal(err)
	}
	line, err := rw.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(line) != "STORED" {
		t.Fatalf("set %s: %q", key, line)
	}
}

func memkvGet(t *testing.T, rw *bufio.ReadWriter, key string) (string, bool) {
	t.Helper()
	fmt.Fprintf(rw, "get %s\r\n", key)
	if err := rw.Flush(); err != nil {
		t.Fatal(err)
	}
	line, err := rw.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(line) == "END" {
		return "", false
	}
	if !strings.HasPrefix(line, "VALUE ") {
		t.Fatalf("get %s: %q", key, line)
	}
	val, err := rw.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if end, err := rw.ReadString('\n'); err != nil || strings.TrimSpace(end) != "END" {
		t.Fatalf("get %s: missing END (%q, %v)", key, end, err)
	}
	return strings.TrimSpace(val), true
}

func dialMemkv(t *testing.T, addr string) *bufio.ReadWriter {
	t.Helper()
	var conn net.Conn
	var err error
	for i := 0; i < 100; i++ {
		conn, err = net.Dial("tcp", addr)
		if err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return bufio.NewReadWriter(bufio.NewReader(conn), bufio.NewWriter(conn))
}

// TestMemkvKillRestart drives the acceptance scenario end to end:
//
//  1. memkv -data serves sets, each acknowledged with STORED;
//  2. the process dies by SIGKILL mid-workload;
//  3. a fresh memkv on the same -data file recovers, reports a crash
//     shutdown with intact invariants, and serves every acknowledged key;
//  4. after a graceful SIGTERM the next start reports a clean shutdown.
func TestMemkvKillRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills real server processes")
	}
	dir := t.TempDir()
	bin := buildMemkv(t, dir)
	arena := filepath.Join(dir, "memkv.dat")
	args := []string{"-addr", "127.0.0.1:0", "-store", "fptreec", "-data", arena, "-pool", "64", "-stats=false"}

	p1 := startMemkv(t, bin, args...)
	p1.waitLine(t, "created arena")
	rw := dialMemkv(t, p1.boundAddr(t))

	const n = 500
	acked := map[string]string{}
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("user:%04d", i%300)
		v := fmt.Sprintf("payload-%06d", i)
		memkvSet(t, rw, k, v)
		acked[k] = v
	}
	// Kill without warning while the connection is live.
	if err := p1.cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	p1.cmd.Wait() //nolint:errcheck
	<-p1.done

	p2 := startMemkv(t, bin, args...)
	banner := p2.waitLine(t, "recovered")
	if !strings.Contains(banner, "crash shutdown") {
		t.Fatalf("recovery banner does not report a crash shutdown: %q", banner)
	}
	if !strings.Contains(banner, "invariants ok") {
		t.Fatalf("recovery banner does not confirm invariants: %q", banner)
	}
	rw2 := dialMemkv(t, p2.boundAddr(t))
	for k, want := range acked {
		got, ok := memkvGet(t, rw2, k)
		if !ok {
			t.Fatalf("acked key %q lost after kill -9", k)
		}
		if got != want {
			t.Fatalf("key %q = %q, want %q", k, got, want)
		}
	}

	// Graceful shutdown marks the arena clean; the next start reports it.
	if err := p2.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	p2.cmd.Wait() //nolint:errcheck
	<-p2.done
	p2.waitLine(t, "closed cleanly")

	p3 := startMemkv(t, bin, args...)
	banner3 := p3.waitLine(t, "recovered")
	if !strings.Contains(banner3, "clean shutdown") {
		t.Fatalf("banner after graceful stop: %q", banner3)
	}
	rw3 := dialMemkv(t, p3.boundAddr(t))
	for k, want := range acked {
		if got, ok := memkvGet(t, rw3, k); !ok || got != want {
			t.Fatalf("key %q = %q,%v after clean restart, want %q", k, got, ok, want)
		}
	}
}

// TestMemkvShardedKillRestart runs the kill -9 durability scenario against a
// sharded server: acked sets spread over 4 shard arena files must all survive
// a SIGKILL, every shard must recover (in parallel) on restart, and a
// graceful stop must mark every shard arena clean.
func TestMemkvShardedKillRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills real server processes")
	}
	dir := t.TempDir()
	bin := buildMemkv(t, dir)
	arena := filepath.Join(dir, "memkv.dat")
	args := []string{"-addr", "127.0.0.1:0", "-store", "fptreec", "-data", arena,
		"-shards", "4", "-pool", "64", "-sync", "25ms", "-stats=false"}

	p1 := startMemkv(t, bin, args...)
	p1.waitLine(t, "created arena")
	rw := dialMemkv(t, p1.boundAddr(t))

	const n = 500
	acked := map[string]string{}
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("user:%04d", i%300)
		v := fmt.Sprintf("payload-%06d", i)
		memkvSet(t, rw, k, v)
		acked[k] = v
	}
	// Every shard file must exist — the keys must actually be partitioned.
	for i := 0; i < 4; i++ {
		if _, err := os.Stat(fmt.Sprintf("%s.shard%d", arena, i)); err != nil {
			t.Fatalf("shard arena %d: %v", i, err)
		}
	}
	if err := p1.cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	p1.cmd.Wait() //nolint:errcheck
	<-p1.done

	p2 := startMemkv(t, bin, args...)
	banner := p2.waitLine(t, "across 4 shards")
	if !strings.Contains(banner, "crash shutdown") {
		t.Fatalf("recovery banner does not report a crash shutdown: %q", banner)
	}
	if !strings.Contains(banner, "invariants ok") {
		t.Fatalf("recovery banner does not confirm invariants: %q", banner)
	}
	rw2 := dialMemkv(t, p2.boundAddr(t))
	for k, want := range acked {
		got, ok := memkvGet(t, rw2, k)
		if !ok {
			t.Fatalf("acked key %q lost after kill -9 (its shard did not replay)", k)
		}
		if got != want {
			t.Fatalf("key %q = %q, want %q", k, got, want)
		}
	}

	// Graceful shutdown must close every shard arena cleanly; the next start
	// reports a clean fleet.
	if err := p2.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	p2.cmd.Wait() //nolint:errcheck
	<-p2.done
	p2.waitLine(t, "closed cleanly")

	p3 := startMemkv(t, bin, args...)
	banner3 := p3.waitLine(t, "across 4 shards")
	if !strings.Contains(banner3, "clean shutdown") {
		t.Fatalf("banner after graceful stop: %q", banner3)
	}
	rw3 := dialMemkv(t, p3.boundAddr(t))
	for k, want := range acked {
		if got, ok := memkvGet(t, rw3, k); !ok || got != want {
			t.Fatalf("key %q = %q,%v after clean restart, want %q", k, got, ok, want)
		}
	}
}

// TestMemkvShardMismatchFails pins the layout guard: reopening a sharded
// data path with a narrower -shards must fail instead of silently stranding
// the extra shards' keys.
func TestMemkvShardMismatchFails(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the server binary")
	}
	dir := t.TempDir()
	bin := buildMemkv(t, dir)
	arena := filepath.Join(dir, "memkv.dat")

	p1 := startMemkv(t, bin, "-addr", "127.0.0.1:0", "-store", "fptreec",
		"-data", arena, "-shards", "4", "-pool", "64", "-stats=false")
	p1.waitLine(t, "created arena")
	if err := p1.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	p1.cmd.Wait() //nolint:errcheck

	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-store", "fptreec",
		"-data", arena, "-shards", "2", "-pool", "64")
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("narrower reopen succeeded:\n%s", out)
	}
	if !strings.Contains(string(out), "sharded wider") {
		t.Fatalf("unexpected error output: %s", out)
	}
}

// TestMemkvHashmapRejectsData pins the transient store's contract.
func TestMemkvHashmapRejectsData(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the server binary")
	}
	dir := t.TempDir()
	bin := buildMemkv(t, dir)
	cmd := exec.Command(bin, "-store", "hashmap", "-data", filepath.Join(dir, "x.dat"))
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("hashmap with -data succeeded:\n%s", out)
	}
	if !strings.Contains(string(out), "cannot use -data") {
		t.Fatalf("unexpected error output: %s", out)
	}
}
