// Command tatp runs the prototype-database experiment of Section 6.4: it
// loads the TATP schema with the chosen dictionary index, runs the read-only
// transaction mix, then simulates a crash and reports the restart time.
//
// Usage:
//
//	tatp -index fptree -subscribers 100000 -txns 200000 -latency 160
//
// With -stats it instead prints per-phase metric deltas for the FPTree
// dictionary index (flushes/op, fences/op, fingerprint false-positive rate)
// from the internal/obs counter registry — counters, not timings.
package main

import (
	"flag"
	"fmt"
	"os"

	"fptree/internal/bench"
)

func main() {
	var (
		subscribers = flag.Int("subscribers", 100000, "TATP subscriber count")
		txns        = flag.Int("txns", 100000, "transactions to run")
		clients     = flag.Int("clients", 8, "client goroutines")
		latency     = flag.Int("latency", 160, "emulated SCM latency in ns")
		stats       = flag.Bool("stats", false, "print per-phase metric deltas for the FPTree index instead of timings")
	)
	flag.Parse()

	if *stats {
		if err := bench.TATPStatsReport(os.Stdout, *subscribers, *txns, *clients, *latency); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if err := bench.Fig12TATP(os.Stdout, *subscribers, *txns, *clients, []int{*latency}); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
