// Command tatp runs the prototype-database experiment of Section 6.4: it
// loads the TATP schema with the chosen dictionary index, runs the read-only
// transaction mix, then simulates a crash and reports the restart time.
//
// Usage:
//
//	tatp -index fptree -subscribers 100000 -txns 200000 -latency 160
package main

import (
	"flag"
	"fmt"
	"os"

	"fptree/internal/bench"
)

func main() {
	var (
		subscribers = flag.Int("subscribers", 100000, "TATP subscriber count")
		txns        = flag.Int("txns", 100000, "transactions to run")
		clients     = flag.Int("clients", 8, "client goroutines")
		latency     = flag.Int("latency", 160, "emulated SCM latency in ns")
	)
	flag.Parse()

	if err := bench.Fig12TATP(os.Stdout, *subscribers, *txns, *clients, []int{*latency}); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
