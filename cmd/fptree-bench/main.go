// Command fptree-bench regenerates the tables and figures of the FPTree
// paper's evaluation (Section 6 and Appendix A). Each -exp value corresponds
// to one table or figure; see DESIGN.md for the experiment index.
//
// Usage:
//
//	fptree-bench -exp fig7 [-warm N] [-ops N] [-scale paper]
//	fptree-bench -exp all
//	fptree-bench -stats
//
// -stats prints a metric-level validation report instead of timings: per-phase
// flushes/op, fences/op, fingerprint false-positive rate and HTM abort ratio,
// derived from the internal/obs counter registry. Given alone it runs only the
// report; combined with an explicit -exp it runs after the experiments.
//
// -json <path> writes a machine-readable summary of the standard
// single-threaded workload suite (ops/sec, p50/p99 latency, flushes/op,
// fences/op per workload) for regression tracking; see BENCH_baseline.json at
// the repository root for the committed baseline. Like -stats, -json given
// without -exp runs only the JSON suite. Adding -trace attaches a
// 1-in-N sampling span tracer (N from -trace-sample) to each tree and emits
// the per-phase latency/flush/fence attribution of every workload into the
// report's "phases" fields.
//
// -recovery runs the recovery-time experiment instead (see RECOVERY.md and
// the recovery section of EXPERIMENTS.md): for each -recovery-keys size it
// bulk loads a tree, simulates a restart, and times core.Open at each
// -recovery-workers count under the emulated SCM latency. With -json the
// measurements are written as the report's "recovery" records. Adding
// -recovery-file builds each tree in a real arena file and reopens the file
// cold for every measurement, so each data point is a true process restart
// (arena open, mmap, recovery scan) rather than an emulated Crash.
//
// -ycsb runs the YCSB-style workload suite (A-F) on the concurrent FPTree:
// scrambled-zipfian, latest and uniform key choosers, read/update/insert/
// scan/read-modify-write mixes, -ycsb-threads client goroutines. Scans drive
// the resumable Iterator and verify every value. With -json the per-workload
// results land in the standard report schema (tagged with thread count and
// key distribution), so -check-json and the regression tooling apply.
//
// -mc runs the memcached shard-scaling suite instead: the Section 6.4 server
// over loopback TCP with its keyspace hash-partitioned across -mc-shards
// FPTreeC shards, measured at each -mc-clients connection count. Reports
// SET/GET throughput, tail latency and the fleet HTM/OCC abort ratio per
// point; with -json the records land in the standard schema tagged with
// shards/clients/htm_abort_ratio.
//
// -contention runs the contention sweep: a read/update mix on the concurrent
// FPTree at each -contention-goroutines count under uniform and zipfian-hot
// key distributions, each point measured twice — fixed retry budget vs. the
// adaptive controller (see CONCURRENCY.md). Reports throughput, tail latency,
// the abort ratio, and the controller's fallback entries and final budget;
// with -json the records land in the standard schema tagged with
// cc_mode/fallback_entries/retry_budget. BENCH_contention.json at the
// repository root is the committed A/B record.
//
// -check-json <path> validates an existing -json document against the report
// schema and exits; CI's recovery-smoke job runs it over fresh output.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"

	"fptree/internal/bench"
)

// parseIntList parses a comma-separated list of positive ints ("1,2,4").
func parseIntList(flagName, s string) []int {
	var out []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			fmt.Fprintf(os.Stderr, "-%s: bad value %q in %q\n", flagName, f, s)
			os.Exit(2)
		}
		out = append(out, n)
	}
	return out
}

func main() {
	var (
		exp        = flag.String("exp", "all", "experiment: tab1|fig4|fig7|fig7var|fig7rec|fig8|fig9|fig10|fig11|fig12|fig13|fig14|ablation-fp|ablation-groups|ablation-sp|all")
		warm       = flag.Int("warm", 100000, "warm-up keys")
		ops        = flag.Int("ops", 50000, "measured operations")
		scale      = flag.String("scale", "small", "small | paper (paper: 50M/50M — hours of runtime)")
		threads    = flag.String("threads", "", "comma-free max thread count for fig9-11 (default NumCPU*2)")
		stats      = flag.Bool("stats", false, "print per-phase metric deltas (flushes/op, fences/op, FP-rate, abort ratio)")
		jsonOut    = flag.String("json", "", "write machine-readable workload results (ops/sec, p50/p99, flushes/op, fences/op) to this path")
		recovery   = flag.Bool("recovery", false, "run the recovery-time experiment (recovery time vs tree size per worker count)")
		recKeys    = flag.String("recovery-keys", "100000,1000000", "comma-separated tree sizes for -recovery")
		recWorkers = flag.String("recovery-workers", "1,2", "comma-separated recovery worker counts for -recovery")
		recLatency = flag.Int("recovery-latency", 250, "emulated SCM latency in ns for -recovery")
		recVar     = flag.Bool("recovery-var", false, "also measure the variable-size-key tree in -recovery")
		recFile    = flag.Bool("recovery-file", false, "run -recovery over file-backed arenas: each measurement reopens a real arena file cold (true restart, including the mmap)")
		checkJSON  = flag.String("check-json", "", "validate an existing -json report at this path and exit")
		traceOn    = flag.Bool("trace", false, "attach a sampling span tracer to the -json suite and emit per-phase attribution (descend/leaf/smo ns, flushes, fences) into the report")
		traceEvery = flag.Int("trace-sample", 64, "1-in-N span sampling rate for -trace")
		mc         = flag.Bool("mc", false, "run the memcached shard-scaling suite: SET/GET throughput over loopback TCP per (shards, clients) point")
		mcStore    = flag.String("mc-store", "fptree", "shard engine for -mc: fptree (locked) | fptreec (concurrent)")
		mcShards   = flag.String("mc-shards", "1,2,4", "comma-separated fleet widths for -mc")
		mcClients  = flag.String("mc-clients", "64", "comma-separated benchmark connection counts for -mc")
		mcLatency  = flag.Int("mc-latency", 85, "emulated SCM latency in ns for -mc (sleep mode; 0 = off)")
		ycsb       = flag.Bool("ycsb", false, "run the YCSB-style workload suite (A-F) on the concurrent FPTree instead of the experiments")
		ycsbWork   = flag.String("ycsb-workloads", "A,B,C,D,E,F", "comma-separated YCSB workloads for -ycsb")
		ycsbRec    = flag.Int("ycsb-records", 50000, "preloaded records per -ycsb workload")
		ycsbThr    = flag.Int("ycsb-threads", 1, "client goroutines for -ycsb")
		ycsbScan   = flag.Int("ycsb-scan", 100, "max scan length for -ycsb workload E")
		ycsbSeed   = flag.Int64("ycsb-seed", 1, "base RNG seed for -ycsb")
		cont       = flag.Bool("contention", false, "run the contention sweep: fixed vs adaptive concurrency control per (distribution, goroutines) point")
		contGos    = flag.String("contention-goroutines", "1,2,4,8", "comma-separated goroutine counts for -contention")
		contDists  = flag.String("contention-dists", "uniform,zipfian", "comma-separated key distributions for -contention (uniform | zipfian)")
		contRec    = flag.Int("contention-records", 50000, "preloaded sequential keys per -contention point")
		contUpd    = flag.Int("contention-update", 50, "update percentage of the -contention mix (rest are finds)")
		contLat    = flag.Int("contention-latency", 1000, "emulated SCM latency in ns for -contention (sleep mode; 0 = off)")
		contTrials = flag.Int("contention-trials", 3, "trials per -contention point; the median trial by throughput is reported")
		contSeed   = flag.Int64("contention-seed", 1, "base RNG seed for -contention")
	)
	flag.Parse()

	if *checkJSON != "" {
		data, err := os.ReadFile(*checkJSON)
		if err == nil {
			err = bench.ValidateReport(data)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "check-json: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("%s: valid bench report\n", *checkJSON)
		return
	}
	expSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "exp" {
			expSet = true
		}
	})

	sc := bench.Scale{Warm: *warm, Ops: *ops}
	if *scale == "paper" {
		sc = bench.Scale{Warm: 50_000_000, Ops: 50_000_000}
	}
	maxThreads := runtime.NumCPU() * 2
	if *threads != "" {
		fmt.Sscanf(*threads, "%d", &maxThreads) //nolint:errcheck
	}
	threadSweep := []int{1}
	for t := 2; t <= maxThreads; t *= 2 {
		threadSweep = append(threadSweep, t)
	}

	w := os.Stdout
	run := func(name string, fn func() error) {
		fmt.Fprintf(w, "\n===== %s =====\n", name)
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
	}

	if *stats {
		run("stats", func() error { return bench.StatsReport(w, sc) })
	}
	if *recovery {
		cfg := bench.RecoveryConfig{
			Sizes:      parseIntList("recovery-keys", *recKeys),
			Workers:    parseIntList("recovery-workers", *recWorkers),
			LatencyNS:  *recLatency,
			Var:        *recVar,
			JSONPath:   *jsonOut,
			FileBacked: *recFile,
		}
		run("recovery", func() error { return bench.RecoveryBench(w, cfg) })
	} else if *mc {
		cfg := bench.MCShardConfig{
			Store:     *mcStore,
			Shards:    parseIntList("mc-shards", *mcShards),
			Clients:   parseIntList("mc-clients", *mcClients),
			Ops:       *ops,
			LatencyNS: *mcLatency,
			JSONPath:  *jsonOut,
		}
		run("mc", func() error { return bench.MCShardBench(w, cfg) })
	} else if *ycsb {
		cfg := bench.YCSBConfig{
			Workloads: strings.Split(*ycsbWork, ","),
			Records:   *ycsbRec,
			Ops:       *ops,
			Threads:   *ycsbThr,
			ScanLen:   *ycsbScan,
			Seed:      *ycsbSeed,
			JSONPath:  *jsonOut,
		}
		run("ycsb", func() error { return bench.YCSBBench(w, cfg) })
	} else if *cont {
		cfg := bench.ContentionConfig{
			Goroutines: parseIntList("contention-goroutines", *contGos),
			Dists:      strings.Split(*contDists, ","),
			Records:    *contRec,
			Ops:        *ops,
			UpdatePct:  *contUpd,
			LatencyNS:  *contLat,
			Trials:     *contTrials,
			Seed:       *contSeed,
			JSONPath:   *jsonOut,
		}
		run("contention", func() error { return bench.ContentionBench(w, cfg) })
	} else if *jsonOut != "" {
		every := 0
		if *traceOn {
			every = *traceEvery
		}
		run("json", func() error { return bench.JSONBench(w, *jsonOut, sc, every) })
	}
	if (*stats || *recovery || *ycsb || *mc || *cont || *jsonOut != "") && !expSet {
		return
	}

	all := *exp == "all"
	if all || *exp == "tab1" {
		run("tab1", func() error { return bench.Table1NodeSizes(w, sc) })
	}
	if all || *exp == "fig4" {
		run("fig4", func() error { return bench.Fig4Probes(w, sc.Warm) })
	}
	if all || *exp == "fig7" {
		run("fig7", func() error { return bench.Fig7Fixed(w, sc, bench.Latencies, bench.FixedKinds) })
	}
	if all || *exp == "fig7var" {
		run("fig7var", func() error { return bench.Fig7Var(w, sc, bench.Latencies, bench.FixedKinds) })
	}
	if all || *exp == "fig7rec" {
		sizes := []int{sc.Warm / 10, sc.Warm, sc.Warm * 4}
		run("fig7rec", func() error { return bench.Fig7Recovery(w, sizes, []int{90, 650}) })
	}
	if all || *exp == "fig8" {
		run("fig8", func() error { return bench.Fig8Memory(w, sc.Warm) })
	}
	if all || *exp == "fig9" {
		run("fig9", func() error { return bench.Fig9Concurrency(w, sc, threadSweep, 85, false) })
		run("fig9var", func() error { return bench.Fig9Concurrency(w, sc, threadSweep, 85, true) })
	}
	if all || *exp == "fig10" {
		// Two sockets: the paper doubles the thread range; on this host the
		// sweep simply extends beyond physical cores.
		ext := append(append([]int{}, threadSweep...), maxThreads*2)
		run("fig10", func() error { return bench.Fig9Concurrency(w, sc, ext, 85, false) })
	}
	if all || *exp == "fig11" {
		run("fig11", func() error { return bench.Fig9Concurrency(w, sc, threadSweep, 145, false) })
	}
	if all || *exp == "fig12" {
		run("fig12", func() error { return bench.Fig12TATP(w, sc.Warm, sc.Ops, 8, []int{160, 450, 650}) })
	}
	if all || *exp == "fig13" {
		run("fig13", func() error { return bench.Fig13Memcached(w, 8, sc.Ops, []int{85, 145}) })
	}
	if all || *exp == "fig14" {
		run("fig14", func() error { return bench.Fig14Payload(w, sc) })
	}
	if all || *exp == "ablation-fp" {
		run("ablation-fp", func() error { return bench.AblationFingerprints(w, sc) })
	}
	if all || *exp == "ablation-groups" {
		run("ablation-groups", func() error { return bench.AblationGroups(w, sc) })
	}
	if all || *exp == "ablation-sp" {
		run("ablation-sp", func() error { return bench.AblationSelectivePersistence(w, sc) })
	}
}
