module fptree

go 1.23
