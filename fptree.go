// Package fptree is a from-scratch Go implementation of the Fingerprinting
// Persistent Tree (FPTree) of Oukid et al., SIGMOD 2016 — a hybrid SCM-DRAM
// persistent and concurrent B+-Tree — together with the emulated Storage
// Class Memory substrate it runs on.
//
// The FPTree keeps leaf nodes in SCM (here: an emulated persistent-memory
// arena with crash semantics, cache-line flush primitives and configurable
// media latency) and rebuilds its DRAM-resident inner nodes on recovery.
// One-byte key fingerprints at the head of each leaf reduce the expected
// number of in-leaf key probes to about one, and Selective Concurrency pairs
// optimistic traversals of the transient part (an HTM emulation) with
// fine-grained persistent leaf locks.
//
// Quick start:
//
//	tree, err := fptree.Create(fptree.Options{})
//	if err != nil { ... }
//	tree.Insert(42, 4200)
//	v, ok := tree.Find(42)
//
// Durability: Save writes the durable image to a file, Load reopens it and
// runs recovery. The emulator's crash testing hooks (Pool().FailAfterFlushes,
// Pool().Crash) let applications exercise their own recovery paths.
package fptree

import (
	"time"

	"fptree/internal/core"
	"fptree/internal/scm"
)

// Options configures a tree and its backing SCM arena.
type Options struct {
	// PoolSize is the arena capacity in bytes. 0 means 256 MiB.
	PoolSize int64
	// LeafCap is the number of entries per leaf (2..64; default 56, the
	// paper's tuned value — fingerprints plus bitmap fill exactly one cache
	// line).
	LeafCap int
	// InnerFanout is the maximum number of keys per DRAM inner node
	// (default 4096 single-threaded, 128 concurrent, per Table 1).
	InnerFanout int
	// GroupSize enables amortized persistent leaf allocations for the
	// single-threaded trees (default 8; set to -1 to disable). Ignored by
	// the concurrent trees.
	GroupSize int
	// ValueSize is the inline value size for variable-size-key trees
	// (default 8).
	ValueSize int
	// PTree selects the fingerprint-less PTree variant (single-threaded
	// trees only).
	PTree bool
	// Latency configures the emulated SCM medium. The zero value disables
	// latency emulation (counting only).
	Latency LatencyProfile
	// Recovery tunes crash recovery (Load and Recover): Workers > 1 scans
	// the persistent leaves in parallel while rebuilding the DRAM inner
	// nodes. The recovered tree is identical for every worker count.
	Recovery RecoveryOptions
}

// RecoveryOptions tunes how recovery rebuilds the DRAM inner nodes from the
// persistent leaves; see core.RecoveryOptions.
type RecoveryOptions = core.RecoveryOptions

// LatencyProfile describes the emulated SCM medium.
type LatencyProfile struct {
	// Emulate enables busy-wait latency emulation; otherwise misses and
	// flushes are only counted.
	Emulate bool
	// Read is charged per SCM cache miss; Write per cache-line flush.
	Read, Write time.Duration
	// CacheBytes sizes the simulated CPU cache in front of SCM (0 = 4 MiB,
	// -1 = no cache: every access misses).
	CacheBytes int64
}

func (o Options) latencyConfig() scm.LatencyConfig {
	cfg := scm.LatencyConfig{
		ReadLatency:  o.Latency.Read,
		WriteLatency: o.Latency.Write,
		CacheBytes:   o.Latency.CacheBytes,
	}
	if o.Latency.Emulate {
		cfg.Mode = scm.LatencySpin
	}
	return cfg
}

func (o Options) poolSize() int64 {
	if o.PoolSize == 0 {
		return 256 << 20
	}
	return o.PoolSize
}

func (o Options) coreConfig() core.Config {
	cfg := core.Config{
		LeafCap:     o.LeafCap,
		InnerFanout: o.InnerFanout,
		GroupSize:   o.GroupSize,
		ValueSize:   o.ValueSize,
	}
	if o.PTree {
		cfg.Variant = core.VariantPTree
	}
	if cfg.GroupSize == 0 {
		cfg.GroupSize = 8
	}
	if cfg.GroupSize < 0 {
		cfg.GroupSize = 0
	}
	return cfg
}

// KV is one fixed-size key-value pair.
type KV = core.KV

// VarKV is one variable-size key-value pair.
type VarKV = core.VarKV

// Iterator is a resumable range iterator over the fixed-key trees: created
// positioned on the window's first key, advanced with Next, released with
// Close. On the concurrent tree each step revalidates the cached leaf's
// modification version and transparently re-seeks from the last returned key
// on conflict, so iteration never double-emits and never skips a key that is
// present for the whole session — but it is not a snapshot: concurrent
// inserts/deletes ahead of the cursor may or may not be observed.
type Iterator = core.FixedIterator

// VarIterator is the variable-size-key counterpart of Iterator.
type VarIterator = core.VarIterator

// Tree is the single-threaded FPTree over 8-byte keys and values.
type Tree struct {
	t    *core.Tree
	pool *scm.Pool
	rec  RecoveryOptions
}

// Create formats a new single-threaded FPTree in a fresh arena.
func Create(opts Options) (*Tree, error) {
	pool := scm.NewPool(opts.poolSize(), opts.latencyConfig())
	t, err := core.Create(pool, opts.coreConfig())
	if err != nil {
		return nil, err
	}
	return &Tree{t: t, pool: pool, rec: opts.Recovery}, nil
}

// Load opens an arena image written by Save and recovers the tree in it.
func Load(path string, opts Options) (*Tree, error) {
	pool, err := scm.Load(path, opts.latencyConfig())
	if err != nil {
		return nil, err
	}
	t, err := core.Open(pool, opts.Recovery)
	if err != nil {
		return nil, err
	}
	return &Tree{t: t, pool: pool, rec: opts.Recovery}, nil
}

// Recover re-opens the tree after a simulated crash on the same pool.
func (t *Tree) Recover() error {
	nt, err := core.Open(t.pool, t.rec)
	if err != nil {
		return err
	}
	t.t = nt
	return nil
}

// Save writes the durable image of the arena to path.
func (t *Tree) Save(path string) error { return t.pool.Save(path) }

// Pool exposes the backing SCM arena (stats, crash hooks, latency control).
func (t *Tree) Pool() *scm.Pool { return t.pool }

// Insert adds a key-value pair; keys are assumed unique.
func (t *Tree) Insert(key, value uint64) error { return t.t.Insert(key, value) }

// Find returns the value stored under key.
func (t *Tree) Find(key uint64) (uint64, bool) { return t.t.Find(key) }

// Update replaces the value under key, reporting whether it existed.
func (t *Tree) Update(key, value uint64) (bool, error) { return t.t.Update(key, value) }

// Upsert inserts the pair or updates it in place.
func (t *Tree) Upsert(key, value uint64) error { return t.t.Upsert(key, value) }

// Delete removes key, reporting whether it existed.
func (t *Tree) Delete(key uint64) (bool, error) { return t.t.Delete(key) }

// BulkLoad populates an empty tree from sorted pairs far faster than
// repeated inserts; fill is the leaf fill factor (0 = 70%). A crash during
// the load recovers a consistent prefix.
func (t *Tree) BulkLoad(kvs []KV, fill float64) error { return t.t.BulkLoad(kvs, fill) }

// Scan visits pairs with key >= from in ascending order until fn returns
// false.
func (t *Tree) Scan(from uint64, fn func(KV) bool) { t.t.Scan(from, fn) }

// ScanN returns up to n pairs with key >= from (nil when n <= 0).
func (t *Tree) ScanN(from uint64, n int) []KV { return t.t.ScanN(from, n) }

// Iterator returns a resumable ascending iterator over [start, end);
// end == 0 means unbounded.
func (t *Tree) Iterator(start, end uint64) *Iterator { return t.t.Iterator(start, end) }

// ReverseIterator returns a resumable descending iterator over [start, end),
// starting at the greatest key below end (end == 0: the maximum key).
func (t *Tree) ReverseIterator(start, end uint64) *Iterator { return t.t.ReverseIterator(start, end) }

// Len returns the number of live keys.
func (t *Tree) Len() int { return t.t.Len() }

// CheckInvariants validates the tree's structural invariants (testing aid).
func (t *Tree) CheckInvariants() error { return t.t.CheckInvariants() }

// CTree is the concurrent FPTree over 8-byte keys and values (Selective
// Concurrency). All methods are safe for concurrent use.
type CTree struct {
	t    *core.CTree
	pool *scm.Pool
	rec  RecoveryOptions
}

// CreateConcurrent formats a new concurrent FPTree in a fresh arena.
func CreateConcurrent(opts Options) (*CTree, error) {
	if opts.InnerFanout == 0 {
		opts.InnerFanout = 128 // Table 1: FPTreeC
	}
	pool := scm.NewPool(opts.poolSize(), opts.latencyConfig())
	cfg := opts.coreConfig()
	cfg.GroupSize = 0
	t, err := core.CCreate(pool, cfg)
	if err != nil {
		return nil, err
	}
	return &CTree{t: t, pool: pool, rec: opts.Recovery}, nil
}

// LoadConcurrent opens an arena image and recovers the concurrent tree.
func LoadConcurrent(path string, opts Options) (*CTree, error) {
	pool, err := scm.Load(path, opts.latencyConfig())
	if err != nil {
		return nil, err
	}
	t, err := core.COpen(pool, opts.Recovery)
	if err != nil {
		return nil, err
	}
	return &CTree{t: t, pool: pool, rec: opts.Recovery}, nil
}

// Recover re-opens the tree after a simulated crash on the same pool.
func (t *CTree) Recover() error {
	nt, err := core.COpen(t.pool, t.rec)
	if err != nil {
		return err
	}
	t.t = nt
	return nil
}

// Save writes the durable image of the arena to path.
func (t *CTree) Save(path string) error { return t.pool.Save(path) }

// Pool exposes the backing SCM arena.
func (t *CTree) Pool() *scm.Pool { return t.pool }

// Insert adds a key-value pair; keys are assumed unique.
func (t *CTree) Insert(key, value uint64) error { return t.t.Insert(key, value) }

// Find returns the value stored under key.
func (t *CTree) Find(key uint64) (uint64, bool) { return t.t.Find(key) }

// Update replaces the value under key, reporting whether it existed.
func (t *CTree) Update(key, value uint64) (bool, error) { return t.t.Update(key, value) }

// Upsert inserts the pair or updates it in place.
func (t *CTree) Upsert(key, value uint64) error { return t.t.Upsert(key, value) }

// Delete removes key, reporting whether it existed.
func (t *CTree) Delete(key uint64) (bool, error) { return t.t.Delete(key) }

// Scan visits pairs with key >= from in ascending order until fn returns
// false.
func (t *CTree) Scan(from uint64, fn func(KV) bool) { t.t.Scan(from, fn) }

// ScanN returns up to n pairs with key >= from (nil when n <= 0).
func (t *CTree) ScanN(from uint64, n int) []KV { return t.t.ScanN(from, n) }

// Iterator returns a resumable ascending iterator over [start, end);
// end == 0 means unbounded. Safe to advance while other goroutines mutate
// the tree.
func (t *CTree) Iterator(start, end uint64) *Iterator { return t.t.Iterator(start, end) }

// ReverseIterator returns a resumable descending iterator over [start, end),
// starting at the greatest key below end (end == 0: the maximum key).
func (t *CTree) ReverseIterator(start, end uint64) *Iterator {
	return t.t.ReverseIterator(start, end)
}

// Len returns the number of live keys.
func (t *CTree) Len() int { return t.t.Len() }

// VarTree is the single-threaded FPTree over variable-size (byte-string)
// keys (Appendix C).
type VarTree struct {
	t    *core.VarTree
	pool *scm.Pool
	rec  RecoveryOptions
}

// CreateVar formats a new single-threaded variable-size-key FPTree.
func CreateVar(opts Options) (*VarTree, error) {
	pool := scm.NewPool(opts.poolSize(), opts.latencyConfig())
	t, err := core.CreateVar(pool, opts.coreConfig())
	if err != nil {
		return nil, err
	}
	return &VarTree{t: t, pool: pool, rec: opts.Recovery}, nil
}

// LoadVar opens an arena image and recovers the variable-size-key tree.
func LoadVar(path string, opts Options) (*VarTree, error) {
	pool, err := scm.Load(path, opts.latencyConfig())
	if err != nil {
		return nil, err
	}
	t, err := core.OpenVar(pool, opts.Recovery)
	if err != nil {
		return nil, err
	}
	return &VarTree{t: t, pool: pool, rec: opts.Recovery}, nil
}

// Recover re-opens the tree after a simulated crash on the same pool.
func (t *VarTree) Recover() error {
	nt, err := core.OpenVar(t.pool, t.rec)
	if err != nil {
		return err
	}
	t.t = nt
	return nil
}

// Save writes the durable image of the arena to path.
func (t *VarTree) Save(path string) error { return t.pool.Save(path) }

// Pool exposes the backing SCM arena.
func (t *VarTree) Pool() *scm.Pool { return t.pool }

// Insert adds a key-value pair; keys are assumed unique.
func (t *VarTree) Insert(key, value []byte) error { return t.t.Insert(key, value) }

// Find returns a copy of the value stored under key.
func (t *VarTree) Find(key []byte) ([]byte, bool) { return t.t.Find(key) }

// Update replaces the value under key, reporting whether it existed.
func (t *VarTree) Update(key, value []byte) (bool, error) { return t.t.Update(key, value) }

// Upsert inserts the pair or updates it in place.
func (t *VarTree) Upsert(key, value []byte) error { return t.t.Upsert(key, value) }

// Delete removes key, reporting whether it existed.
func (t *VarTree) Delete(key []byte) (bool, error) { return t.t.Delete(key) }

// BulkLoad populates an empty tree from pairs sorted by bytewise key order,
// far faster than repeated inserts; fill is the leaf fill factor (0 = 70%).
// A crash during the load recovers a consistent prefix.
func (t *VarTree) BulkLoad(kvs []VarKV, fill float64) error { return t.t.BulkLoad(kvs, fill) }

// Scan visits pairs with key >= from in ascending order until fn returns
// false.
func (t *VarTree) Scan(from []byte, fn func(VarKV) bool) { t.t.Scan(from, fn) }

// ScanN returns up to n pairs with key >= from (nil when n <= 0).
func (t *VarTree) ScanN(from []byte, n int) []VarKV { return t.t.ScanN(from, n) }

// Iterator returns a resumable ascending iterator over [start, end) in
// bytewise key order; a nil edge means unbounded.
func (t *VarTree) Iterator(start, end []byte) *VarIterator { return t.t.Iterator(start, end) }

// ReverseIterator returns a resumable descending iterator over [start, end),
// starting at the greatest key below end (nil end: the maximum key).
func (t *VarTree) ReverseIterator(start, end []byte) *VarIterator {
	return t.t.ReverseIterator(start, end)
}

// Len returns the number of live keys.
func (t *VarTree) Len() int { return t.t.Len() }

// CVarTree is the concurrent FPTree over variable-size keys.
type CVarTree struct {
	t    *core.CVarTree
	pool *scm.Pool
	rec  RecoveryOptions
}

// CreateConcurrentVar formats a new concurrent variable-size-key FPTree.
func CreateConcurrentVar(opts Options) (*CVarTree, error) {
	if opts.InnerFanout == 0 {
		opts.InnerFanout = 64 // Table 1: FPTreeCVar
	}
	pool := scm.NewPool(opts.poolSize(), opts.latencyConfig())
	cfg := opts.coreConfig()
	cfg.GroupSize = 0
	t, err := core.CCreateVar(pool, cfg)
	if err != nil {
		return nil, err
	}
	return &CVarTree{t: t, pool: pool, rec: opts.Recovery}, nil
}

// LoadConcurrentVar opens an arena image and recovers the tree.
func LoadConcurrentVar(path string, opts Options) (*CVarTree, error) {
	pool, err := scm.Load(path, opts.latencyConfig())
	if err != nil {
		return nil, err
	}
	t, err := core.COpenVar(pool, opts.Recovery)
	if err != nil {
		return nil, err
	}
	return &CVarTree{t: t, pool: pool, rec: opts.Recovery}, nil
}

// Recover re-opens the tree after a simulated crash on the same pool.
func (t *CVarTree) Recover() error {
	nt, err := core.COpenVar(t.pool, t.rec)
	if err != nil {
		return err
	}
	t.t = nt
	return nil
}

// Save writes the durable image of the arena to path.
func (t *CVarTree) Save(path string) error { return t.pool.Save(path) }

// Pool exposes the backing SCM arena.
func (t *CVarTree) Pool() *scm.Pool { return t.pool }

// Insert adds a key-value pair; keys are assumed unique.
func (t *CVarTree) Insert(key, value []byte) error { return t.t.Insert(key, value) }

// Find returns a copy of the value stored under key.
func (t *CVarTree) Find(key []byte) ([]byte, bool) { return t.t.Find(key) }

// Update replaces the value under key, reporting whether it existed.
func (t *CVarTree) Update(key, value []byte) (bool, error) { return t.t.Update(key, value) }

// Upsert inserts the pair or updates it in place.
func (t *CVarTree) Upsert(key, value []byte) error { return t.t.Upsert(key, value) }

// Delete removes key, reporting whether it existed.
func (t *CVarTree) Delete(key []byte) (bool, error) { return t.t.Delete(key) }

// Scan visits pairs with key >= from in ascending order until fn returns
// false.
func (t *CVarTree) Scan(from []byte, fn func(VarKV) bool) { t.t.Scan(from, fn) }

// ScanN returns up to n pairs with key >= from (nil when n <= 0).
func (t *CVarTree) ScanN(from []byte, n int) []VarKV { return t.t.ScanN(from, n) }

// Iterator returns a resumable ascending iterator over [start, end) in
// bytewise key order; a nil edge means unbounded. Safe to advance while
// other goroutines mutate the tree.
func (t *CVarTree) Iterator(start, end []byte) *VarIterator { return t.t.Iterator(start, end) }

// ReverseIterator returns a resumable descending iterator over [start, end),
// starting at the greatest key below end (nil end: the maximum key).
func (t *CVarTree) ReverseIterator(start, end []byte) *VarIterator {
	return t.t.ReverseIterator(start, end)
}

// Len returns the number of live keys.
func (t *CVarTree) Len() int { return t.t.Len() }

// Version is the library version.
const Version = "1.0.0"
